// Regression tests for EventQueue / TimerHandle cancellation edge
// cases: cancelling an event that already fired, cancelling twice, and
// cancelling from inside a running callback must all be safe no-ops
// that report false — and none of them may corrupt the live count that
// empty()/size() (and thus the simulator's idle detection) rely on.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace rainbow {
namespace {

TEST(EventQueueSentinelTest, FirstIdIsNeverInvalid) {
  EventQueue q;
  EventQueue::EventId id = q.Schedule(1, [] {});
  EXPECT_NE(id, EventQueue::kInvalidId);
  EXPECT_FALSE(q.Cancel(EventQueue::kInvalidId));
  EXPECT_TRUE(q.Cancel(id));
}

TEST(EventQueueSentinelTest, DefaultTimerHandleCannotCancelFirstTimer) {
  // Regression: TimerHandle's inert sentinel is id 0. Before slot 0's
  // generation was reserved, the very first event of a fresh queue
  // packed to (slot 0, generation 0) == 0, so a default-constructed
  // handle aliased it and Cancel() on the "inert" handle killed a live
  // event.
  Simulator sim;
  bool fired = false;
  TimerHandle real = sim.After(5, [&] { fired = true; });
  TimerHandle inert;
  EXPECT_FALSE(inert.Cancel());
  EXPECT_TRUE(real.valid());
  sim.RunToQuiescence();
  EXPECT_TRUE(fired);
}

TEST(EventQueueSentinelTest, Slot0ReuseNeverYieldsInvalidId) {
  // Slot 0 is recycled through many generations; no returned id may
  // ever equal the reserved sentinel.
  EventQueue q;
  for (int i = 0; i < 1000; ++i) {
    EventQueue::EventId id = q.Schedule(i, [] {});
    EXPECT_NE(id, EventQueue::kInvalidId);
    q.PopNext().cb();
  }
}

TEST(EventQueueCancelTest, CancelAfterFireReturnsFalse) {
  EventQueue q;
  int fired = 0;
  EventQueue::EventId id = q.Schedule(5, [&] { ++fired; });
  auto ev = q.PopNext();
  ev.cb();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(q.Cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueCancelTest, DoubleCancelReturnsFalse) {
  EventQueue q;
  EventQueue::EventId id = q.Schedule(5, [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueCancelTest, CancelUnknownIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(12345));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueCancelTest, SelfCancelInsideCallbackIsSafe) {
  // The callback is removed from the queue before it runs, so a
  // callback cancelling its own id must see "already fired" and must
  // not decrement the live count a second time.
  EventQueue q;
  EventQueue::EventId id = 0;
  bool self_cancel_result = true;
  id = q.Schedule(1, [&] { self_cancel_result = q.Cancel(id); });
  q.Schedule(2, [] {});
  auto ev = q.PopNext();
  ev.cb();
  EXPECT_FALSE(self_cancel_result);
  EXPECT_EQ(q.size(), 1u);  // only the second event remains
  EXPECT_FALSE(q.empty());
  q.PopNext().cb();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueCancelTest, CallbackCancellingAnotherPendingEvent) {
  EventQueue q;
  int fired = 0;
  EventQueue::EventId victim = q.Schedule(10, [&] { fired += 100; });
  q.Schedule(1, [&] {
    ++fired;
    EXPECT_TRUE(q.Cancel(victim));
  });
  while (!q.empty()) q.PopNext().cb();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueCancelTest, LiveCountSurvivesMixedOperations) {
  EventQueue q;
  std::vector<EventQueue::EventId> ids;
  for (int i = 0; i < 20; ++i) ids.push_back(q.Schedule(i, [] {}));
  EXPECT_EQ(q.size(), 20u);
  // Cancel every other event, some of them twice.
  for (int i = 0; i < 20; i += 2) {
    EXPECT_TRUE(q.Cancel(ids[i]));
    EXPECT_FALSE(q.Cancel(ids[i]));
  }
  EXPECT_EQ(q.size(), 10u);
  size_t popped = 0;
  while (!q.empty()) {
    q.PopNext();
    ++popped;
  }
  EXPECT_EQ(popped, 10u);
  EXPECT_EQ(q.size(), 0u);
  // Cancelling fired events after the fact changes nothing.
  for (int i = 1; i < 20; i += 2) EXPECT_FALSE(q.Cancel(ids[i]));
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueCancelTest, NextTimeAfterCancellingEverything) {
  EventQueue q;
  auto a = q.Schedule(3, [] {});
  auto b = q.Schedule(7, [] {});
  EXPECT_EQ(q.NextTime(), 3);
  q.Cancel(a);
  EXPECT_EQ(q.NextTime(), 7);
  q.Cancel(b);
  EXPECT_EQ(q.NextTime(), kSimTimeMax);
  EXPECT_TRUE(q.empty());
}

TEST(TimerHandleTest, CancelAfterFireReturnsFalse) {
  Simulator sim;
  int fired = 0;
  TimerHandle h = sim.After(10, [&] { ++fired; });
  sim.RunToQuiescence();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(h.Cancel());
  EXPECT_FALSE(h.Cancel());
  EXPECT_TRUE(sim.idle());
}

TEST(TimerHandleTest, SelfCancelInsideOwnCallback) {
  Simulator sim;
  TimerHandle h;
  bool result = true;
  h = sim.After(5, [&] { result = h.Cancel(); });
  sim.RunToQuiescence();
  EXPECT_FALSE(result);
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(TimerHandleTest, RearmedHandleCancelsOnlyTheNewTimer) {
  // A handle overwritten with a new timer (the site code's rearm
  // pattern) must control the new event, and the fired-then-rearmed
  // sequence must leave the pending count exact.
  Simulator sim;
  int fired = 0;
  TimerHandle h = sim.After(1, [&] { ++fired; });
  sim.RunToQuiescence();
  ASSERT_EQ(fired, 1);
  h = sim.After(1, [&] { fired += 10; });
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_TRUE(h.Cancel());
  sim.RunToQuiescence();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.idle());
}

TEST(TimerHandleTest, DefaultHandleIsInert) {
  TimerHandle h;
  EXPECT_FALSE(h.valid());
  EXPECT_FALSE(h.Cancel());
}

// Model test: drive the slot-reusing EventQueue through thousands of
// randomly interleaved Schedule / Cancel / PopNext operations and
// compare every observable — fire order, Cancel results, NextTime,
// size — against a naive reference that stores callbacks in a plain
// vector and marks cancellations with a flag. Any slot/generation
// bookkeeping bug (stale id cancelling a reused slot, live count
// drift, tombstone mis-skip) shows up as a divergence.
TEST(EventQueueModelTest, RandomizedAgainstNaiveReference) {
  struct RefEvent {
    SimTime time;
    uint64_t seq;
    int tag;
    bool cancelled = false;
    bool fired = false;
  };
  Rng rng(20260806);
  EventQueue q;
  std::vector<RefEvent> ref;           // indexed by tag
  std::vector<EventQueue::EventId> ids;  // tag -> real id
  std::vector<int> fired_real;
  uint64_t seq = 0;

  auto ref_live = [&] {
    size_t n = 0;
    for (const RefEvent& e : ref) {
      if (!e.cancelled && !e.fired) ++n;
    }
    return n;
  };
  auto ref_next = [&]() -> const RefEvent* {
    const RefEvent* best = nullptr;
    for (const RefEvent& e : ref) {
      if (e.cancelled || e.fired) continue;
      if (best == nullptr || e.time < best->time ||
          (e.time == best->time && e.seq < best->seq)) {
        best = &e;
      }
    }
    return best;
  };

  for (int step = 0; step < 6000; ++step) {
    uint64_t op = rng.NextUint(10);
    if (op < 5) {  // Schedule
      SimTime when = static_cast<SimTime>(rng.NextUint(50));
      int tag = static_cast<int>(ref.size());
      ref.push_back(RefEvent{when, seq++, tag});
      ids.push_back(q.Schedule(
          when, [&fired_real, tag] { fired_real.push_back(tag); }));
    } else if (op < 8) {  // Cancel a random past id (may be stale)
      if (ids.empty()) continue;
      size_t tag = rng.NextUint(ids.size());
      RefEvent& e = ref[tag];
      bool ref_ok = !e.cancelled && !e.fired;
      e.cancelled = true;
      EXPECT_EQ(q.Cancel(ids[tag]), ref_ok) << "step " << step;
    } else {  // PopNext + run
      const RefEvent* next = ref_next();
      ASSERT_EQ(q.empty(), next == nullptr) << "step " << step;
      if (next == nullptr) continue;
      EXPECT_EQ(q.NextTime(), next->time) << "step " << step;
      EventQueue::Fired f = q.PopNext();
      EXPECT_EQ(f.time, next->time) << "step " << step;
      f.cb();
      ASSERT_FALSE(fired_real.empty());
      EXPECT_EQ(fired_real.back(), next->tag) << "step " << step;
      ref[static_cast<size_t>(next->tag)].fired = true;
    }
    ASSERT_EQ(q.size(), ref_live()) << "step " << step;
  }

  // Drain: the remaining fire order must match the reference exactly.
  while (!q.empty()) {
    const RefEvent* next = ref_next();
    ASSERT_NE(next, nullptr);
    EventQueue::Fired f = q.PopNext();
    EXPECT_EQ(f.time, next->time);
    f.cb();
    EXPECT_EQ(fired_real.back(), next->tag);
    ref[static_cast<size_t>(next->tag)].fired = true;
  }
  EXPECT_EQ(ref_next(), nullptr);
  EXPECT_EQ(q.NextTime(), kSimTimeMax);
}

// The calendar/ladder structure has tier boundaries the uniform test
// above never crosses: times beyond the ring horizon (overflow heap),
// cursor wrap-around of the bucket ring, schedules at or behind the
// cursor after long quiet jumps, and explicit ordering keys competing
// at one tick. Drive all of them against the same naive reference for
// >10k mixed steps.
TEST(EventQueueModelTest, CalendarTiersDifferentialSweep) {
  struct RefEvent {
    SimTime time;
    uint64_t key;
    uint64_t seq;
    int tag;
    bool cancelled = false;
    bool fired = false;
  };
  Rng rng(20260808);
  EventQueue q;
  std::vector<RefEvent> ref;
  std::vector<EventQueue::EventId> ids;
  std::vector<int> fired_real;
  uint64_t seq = 0;
  SimTime low_water = 0;  // latest fired time: schedule floor

  auto ref_next = [&]() -> const RefEvent* {
    const RefEvent* best = nullptr;
    for (const RefEvent& e : ref) {
      if (e.cancelled || e.fired) continue;
      if (best == nullptr || e.time < best->time ||
          (e.time == best->time &&
           (e.key < best->key || (e.key == best->key && e.seq < best->seq)))) {
        best = &e;
      }
    }
    return best;
  };

  for (int step = 0; step < 12000; ++step) {
    uint64_t op = rng.NextUint(100);
    if (op < 50) {  // Schedule across all three tiers
      uint64_t shape = rng.NextUint(100);
      SimTime when;
      if (shape < 45) {
        when = low_water + static_cast<SimTime>(rng.NextUint(64));  // active
      } else if (shape < 80) {
        when = low_water + static_cast<SimTime>(rng.NextUint(16'000));  // ring
      } else if (shape < 95) {
        // Far future: past the 256-bucket horizon, into the overflow
        // heap (and across many full ring revolutions).
        when =
            low_water + 16'384 + static_cast<SimTime>(rng.NextUint(5'000'000));
      } else {
        when = low_water;  // exactly at the cursor's tick
      }
      uint64_t key = rng.NextUint(4);  // collide keys at shared ticks
      int tag = static_cast<int>(ref.size());
      ref.push_back(RefEvent{when, key, seq++, tag});
      ids.push_back(q.Schedule(
          when, key, [&fired_real, tag] { fired_real.push_back(tag); }));
    } else if (op < 70) {  // Cancel anything ever scheduled
      if (ids.empty()) continue;
      size_t tag = rng.NextUint(ids.size());
      RefEvent& e = ref[tag];
      bool ref_ok = !e.cancelled && !e.fired;  // false = cancel-after-fire
      e.cancelled = true;
      EXPECT_EQ(q.Cancel(ids[tag]), ref_ok) << "step " << step;
    } else if (op < 95) {  // PopNext + run
      const RefEvent* next = ref_next();
      ASSERT_EQ(q.empty(), next == nullptr) << "step " << step;
      if (next == nullptr) continue;
      ASSERT_EQ(q.NextTime(), next->time) << "step " << step;
      EventQueue::Fired f = q.PopNext();
      ASSERT_EQ(f.time, next->time) << "step " << step;
      f.cb();
      ASSERT_FALSE(fired_real.empty());
      ASSERT_EQ(fired_real.back(), next->tag) << "step " << step;
      ref[static_cast<size_t>(next->tag)].fired = true;
      low_water = f.time;
    } else {
      // Quiet-period jump: drain a chunk so the cursor leaps across
      // bucket-ring wraps (and lands on overflow-only states).
      for (int burst = 0; burst < 40 && !q.empty(); ++burst) {
        const RefEvent* next = ref_next();
        ASSERT_NE(next, nullptr) << "step " << step;
        EventQueue::Fired f = q.PopNext();
        ASSERT_EQ(f.time, next->time) << "step " << step << " burst " << burst;
        f.cb();
        ASSERT_EQ(fired_real.back(), next->tag)
            << "step " << step << " burst " << burst;
        ref[static_cast<size_t>(next->tag)].fired = true;
        low_water = f.time;
      }
    }
    size_t live = 0;
    for (const RefEvent& e : ref) {
      if (!e.cancelled && !e.fired) ++live;
    }
    ASSERT_EQ(q.size(), live) << "step " << step;
  }

  // Drain to empty: total order must match the reference to the end.
  while (!q.empty()) {
    const RefEvent* next = ref_next();
    ASSERT_NE(next, nullptr);
    EventQueue::Fired f = q.PopNext();
    ASSERT_EQ(f.time, next->time);
    f.cb();
    ASSERT_EQ(fired_real.back(), next->tag);
    ref[static_cast<size_t>(next->tag)].fired = true;
  }
  EXPECT_EQ(ref_next(), nullptr);
  EXPECT_EQ(q.NextTime(), kSimTimeMax);
}

}  // namespace
}  // namespace rainbow
