// Regression tests for EventQueue / TimerHandle cancellation edge
// cases: cancelling an event that already fired, cancelling twice, and
// cancelling from inside a running callback must all be safe no-ops
// that report false — and none of them may corrupt the live count that
// empty()/size() (and thus the simulator's idle detection) rely on.

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace rainbow {
namespace {

TEST(EventQueueCancelTest, CancelAfterFireReturnsFalse) {
  EventQueue q;
  int fired = 0;
  EventQueue::EventId id = q.Schedule(5, [&] { ++fired; });
  auto ev = q.PopNext();
  ev.cb();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(q.Cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueCancelTest, DoubleCancelReturnsFalse) {
  EventQueue q;
  EventQueue::EventId id = q.Schedule(5, [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueCancelTest, CancelUnknownIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(12345));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueCancelTest, SelfCancelInsideCallbackIsSafe) {
  // The callback is removed from the queue before it runs, so a
  // callback cancelling its own id must see "already fired" and must
  // not decrement the live count a second time.
  EventQueue q;
  EventQueue::EventId id = 0;
  bool self_cancel_result = true;
  id = q.Schedule(1, [&] { self_cancel_result = q.Cancel(id); });
  q.Schedule(2, [] {});
  auto ev = q.PopNext();
  ev.cb();
  EXPECT_FALSE(self_cancel_result);
  EXPECT_EQ(q.size(), 1u);  // only the second event remains
  EXPECT_FALSE(q.empty());
  q.PopNext().cb();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueCancelTest, CallbackCancellingAnotherPendingEvent) {
  EventQueue q;
  int fired = 0;
  EventQueue::EventId victim = q.Schedule(10, [&] { fired += 100; });
  q.Schedule(1, [&] {
    ++fired;
    EXPECT_TRUE(q.Cancel(victim));
  });
  while (!q.empty()) q.PopNext().cb();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueCancelTest, LiveCountSurvivesMixedOperations) {
  EventQueue q;
  std::vector<EventQueue::EventId> ids;
  for (int i = 0; i < 20; ++i) ids.push_back(q.Schedule(i, [] {}));
  EXPECT_EQ(q.size(), 20u);
  // Cancel every other event, some of them twice.
  for (int i = 0; i < 20; i += 2) {
    EXPECT_TRUE(q.Cancel(ids[i]));
    EXPECT_FALSE(q.Cancel(ids[i]));
  }
  EXPECT_EQ(q.size(), 10u);
  size_t popped = 0;
  while (!q.empty()) {
    q.PopNext();
    ++popped;
  }
  EXPECT_EQ(popped, 10u);
  EXPECT_EQ(q.size(), 0u);
  // Cancelling fired events after the fact changes nothing.
  for (int i = 1; i < 20; i += 2) EXPECT_FALSE(q.Cancel(ids[i]));
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueCancelTest, NextTimeAfterCancellingEverything) {
  EventQueue q;
  auto a = q.Schedule(3, [] {});
  auto b = q.Schedule(7, [] {});
  EXPECT_EQ(q.NextTime(), 3);
  q.Cancel(a);
  EXPECT_EQ(q.NextTime(), 7);
  q.Cancel(b);
  EXPECT_EQ(q.NextTime(), kSimTimeMax);
  EXPECT_TRUE(q.empty());
}

TEST(TimerHandleTest, CancelAfterFireReturnsFalse) {
  Simulator sim;
  int fired = 0;
  TimerHandle h = sim.After(10, [&] { ++fired; });
  sim.RunToQuiescence();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(h.Cancel());
  EXPECT_FALSE(h.Cancel());
  EXPECT_TRUE(sim.idle());
}

TEST(TimerHandleTest, SelfCancelInsideOwnCallback) {
  Simulator sim;
  TimerHandle h;
  bool result = true;
  h = sim.After(5, [&] { result = h.Cancel(); });
  sim.RunToQuiescence();
  EXPECT_FALSE(result);
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(TimerHandleTest, RearmedHandleCancelsOnlyTheNewTimer) {
  // A handle overwritten with a new timer (the site code's rearm
  // pattern) must control the new event, and the fired-then-rearmed
  // sequence must leave the pending count exact.
  Simulator sim;
  int fired = 0;
  TimerHandle h = sim.After(1, [&] { ++fired; });
  sim.RunToQuiescence();
  ASSERT_EQ(fired, 1);
  h = sim.After(1, [&] { fired += 10; });
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_TRUE(h.Cancel());
  sim.RunToQuiescence();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.idle());
}

TEST(TimerHandleTest, DefaultHandleIsInert) {
  TimerHandle h;
  EXPECT_FALSE(h.valid());
  EXPECT_FALSE(h.Cancel());
}

}  // namespace
}  // namespace rainbow
