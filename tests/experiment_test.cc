#include <gtest/gtest.h>

#include "core/experiment.h"

namespace rainbow {
namespace {

Experiment::Point SmallPoint(const std::string& label, uint32_t mpl) {
  Experiment::Point p;
  p.label = label;
  p.system.seed = 9;
  p.system.num_sites = 3;
  p.system.AddUniformItems(60, 100, 3);
  p.workload.seed = 10;
  p.workload.num_txns = 40;
  p.workload.mpl = mpl;
  return p;
}

TEST(ExperimentTest, RunsSweepAndRendersTable) {
  Experiment exp("mpl sweep");
  exp.AddPoint(SmallPoint("1", 1));
  exp.AddPoint(SmallPoint("4", 4));
  ASSERT_TRUE(exp.Run().ok());
  ASSERT_EQ(exp.results().size(), 2u);
  EXPECT_EQ(exp.results()[0].committed + exp.results()[0].aborted, 40u);

  std::string table =
      exp.RenderTable({metrics::CommitRate(), metrics::Throughput(),
                       metrics::MeanResponseMs(), metrics::MsgsPerCommit()});
  EXPECT_NE(table.find("mpl sweep"), std::string::npos);
  EXPECT_NE(table.find("commit_rate"), std::string::npos);
  EXPECT_NE(table.find("1 |"), std::string::npos);
  EXPECT_NE(table.find("4 |"), std::string::npos);

  std::string chart = exp.RenderChart(metrics::Throughput());
  EXPECT_NE(chart.find("tput_tps"), std::string::npos);
  EXPECT_NE(chart.find('#'), std::string::npos);
}

TEST(ExperimentTest, FailurePropagatesWithContext) {
  Experiment exp("bad point");
  Experiment::Point p;  // no items: invalid configuration
  p.label = "broken";
  p.system.num_sites = 2;
  exp.AddPoint(std::move(p));
  Status s = exp.Run();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("bad point"), std::string::npos);
  EXPECT_NE(s.message().find("broken"), std::string::npos);
}

TEST(ExperimentTest, MetricsExtractSensibly) {
  SessionResult r;
  r.committed = 80;
  r.aborted = 20;
  r.aborted_ccp = 15;
  r.aborted_rcp = 5;
  r.commit_rate = 0.8;
  r.throughput_tps = 123.4;
  r.mean_response_us = 2500;
  r.p95_response_us = 9000;
  r.msgs_per_commit = 17.5;
  r.mean_blocked_us = 4000;
  r.max_blocked_us = 20000;
  r.orphans = 3;
  EXPECT_DOUBLE_EQ(metrics::CommitRate().get(r), 80.0);
  EXPECT_DOUBLE_EQ(metrics::Throughput().get(r), 123.4);
  EXPECT_DOUBLE_EQ(metrics::MeanResponseMs().get(r), 2.5);
  EXPECT_DOUBLE_EQ(metrics::P95ResponseMs().get(r), 9.0);
  EXPECT_DOUBLE_EQ(metrics::MsgsPerCommit().get(r), 17.5);
  EXPECT_DOUBLE_EQ(metrics::AbortRateCcp().get(r), 15.0);
  EXPECT_DOUBLE_EQ(metrics::AbortRateRcp().get(r), 5.0);
  EXPECT_DOUBLE_EQ(metrics::AbortRateTotal().get(r), 20.0);
  EXPECT_DOUBLE_EQ(metrics::Committed().get(r), 80.0);
  EXPECT_DOUBLE_EQ(metrics::Orphans().get(r), 3.0);
  EXPECT_DOUBLE_EQ(metrics::MeanBlockedMs().get(r), 4.0);
  EXPECT_DOUBLE_EQ(metrics::MaxBlockedMs().get(r), 20.0);
}

}  // namespace
}  // namespace rainbow
