// Declarative fault-script grammar (fault/fault_script.h): round-trip
// stability Save(Parse(s)) == s on canonical scripts, every verb of the
// vocabulary, comment/blank handling, and line-numbered errors.

#include <gtest/gtest.h>

#include "fault/fault_script.h"

namespace rainbow {
namespace {

TEST(FaultScriptTest, RoundTripsEveryVerb) {
  const std::string canonical =
      "0 crash 2\n"
      "1000 recover 2\n"
      "2000 crashns\n"
      "3000 recoverns\n"
      "4000 linkdown 0 1\n"
      "5000 linkup 0 1\n"
      "6000 linkdown1 1 3\n"
      "7000 linkup1 1 3\n"
      "8000 loss 0 2 0.25\n"
      "9000 delay 0 2 4\n"
      "10000 dup 2 0 0.5\n"
      "11000 reorder 2 0 1500\n"
      "12000 partition 0 1 | 2 3 4\n"
      "13000 heal\n"
      "14000 clearlinks\n"
      "15000 tornwrite 1 0.25\n"
      "16000 shortwrite 2 0.5\n"
      "17000 lostwrite 0 0.125\n"
      "18000 readflip 3 0.01\n";
  Result<std::vector<FaultEvent>> events = ParseFaultScript(canonical);
  ASSERT_TRUE(events.ok()) << events.status();
  EXPECT_EQ(events->size(), 19u);
  EXPECT_EQ(SaveFaultScript(*events), canonical);
}

TEST(FaultScriptTest, ParseThenSaveThenParseIsIdentity) {
  const std::string script =
      "100 crash 0\n"
      "200 loss 1 2 0.125\n"
      "300 partition 0 | 1 2\n";
  Result<std::vector<FaultEvent>> first = ParseFaultScript(script);
  ASSERT_TRUE(first.ok());
  Result<std::vector<FaultEvent>> second =
      ParseFaultScript(SaveFaultScript(*first));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
}

TEST(FaultScriptTest, SkipsCommentsAndBlankLines) {
  const std::string script =
      "# a header comment\n"
      "\n"
      "   \n"
      "  500 crash 1   \n"
      "# trailing comment\n";
  Result<std::vector<FaultEvent>> events = ParseFaultScript(script);
  ASSERT_TRUE(events.ok()) << events.status();
  ASSERT_EQ(events->size(), 1u);
  EXPECT_EQ((*events)[0].kind, FaultEvent::Kind::kCrashSite);
  EXPECT_EQ((*events)[0].at, 500);
  EXPECT_EQ((*events)[0].site, 1u);
}

TEST(FaultScriptTest, ParseFaultCommandUsesGivenTime) {
  Result<FaultEvent> e = ParseFaultCommand("dup 0 3 0.75", Millis(7));
  ASSERT_TRUE(e.ok()) << e.status();
  EXPECT_EQ(e->kind, FaultEvent::Kind::kLinkDup);
  EXPECT_EQ(e->at, Millis(7));
  EXPECT_EQ(e->site, 0u);
  EXPECT_EQ(e->peer, 3u);
  EXPECT_DOUBLE_EQ(e->amount, 0.75);
}

TEST(FaultScriptTest, PartitionNeedsTwoGroups) {
  EXPECT_FALSE(ParseFaultScript("0 partition 0 1 2\n").ok());
  EXPECT_FALSE(ParseFaultScript("0 partition 0 1 |\n").ok());
  EXPECT_TRUE(ParseFaultScript("0 partition 0 | 1\n").ok());
}

TEST(FaultScriptTest, RejectsBadInput) {
  // Unknown verb.
  EXPECT_FALSE(ParseFaultScript("0 explode 1\n").ok());
  // Wrong arity.
  EXPECT_FALSE(ParseFaultScript("0 crash\n").ok());
  EXPECT_FALSE(ParseFaultScript("0 crash 1 2\n").ok());
  EXPECT_FALSE(ParseFaultScript("0 heal 3\n").ok());
  // Probability out of range.
  EXPECT_FALSE(ParseFaultScript("0 loss 0 1 1.5\n").ok());
  EXPECT_FALSE(ParseFaultScript("0 dup 0 1 -0.1\n").ok());
  EXPECT_FALSE(ParseFaultScript("0 tornwrite 1 1.5\n").ok());
  EXPECT_FALSE(ParseFaultScript("0 readflip 1 -0.5\n").ok());
  // Storage verbs take exactly <site> <probability>.
  EXPECT_FALSE(ParseFaultScript("0 tornwrite 1\n").ok());
  EXPECT_FALSE(ParseFaultScript("0 lostwrite 1 2 0.5\n").ok());
  // Negative / non-numeric time.
  EXPECT_FALSE(ParseFaultScript("-5 crash 1\n").ok());
  EXPECT_FALSE(ParseFaultScript("soon crash 1\n").ok());
  // Missing verb after the timestamp.
  EXPECT_FALSE(ParseFaultScript("42\n").ok());
}

TEST(FaultScriptTest, ErrorsCarryLineNumbers) {
  Result<std::vector<FaultEvent>> r =
      ParseFaultScript("0 crash 1\n# fine\n10 explode\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
      << r.status();
}

TEST(FaultScriptTest, SiteIdsAreRangeChecked) {
  EXPECT_FALSE(ParseFaultScript("0 crash 4294967295\n").ok());  // kInvalidSite
  EXPECT_FALSE(ParseFaultScript("0 linkdown 0 4294967294\n").ok());  // NS id
}

TEST(FaultScriptTest, FormatsCanonically) {
  EXPECT_EQ(FormatFaultEvent(FaultEvent::Crash(Millis(1), 3)), "1000 crash 3");
  EXPECT_EQ(FormatFaultEvent(FaultEvent::LinkLoss(0, 1, 2, 0.2)),
            "0 loss 1 2 0.2");
  EXPECT_EQ(FormatFaultEvent(FaultEvent::Partition(5, {{0, 1}, {2}})),
            "5 partition 0 1 | 2");
  EXPECT_EQ(FormatFaultEvent(FaultEvent::Heal(9)), "9 heal");
  EXPECT_EQ(FormatFaultEvent(FaultEvent::StorageTorn(Millis(2), 1, 0.25)),
            "2000 tornwrite 1 0.25");
  EXPECT_EQ(FormatFaultEvent(FaultEvent::StorageReadFlip(0, 4, 0.01)),
            "0 readflip 4 0.01");
}

}  // namespace
}  // namespace rainbow
