#include <gtest/gtest.h>

#include "verify/history.h"

namespace rainbow {
namespace {

TxnId T(uint64_t n) { return TxnId{0, n}; }

CommittedAccess R(ItemId item, Version v) { return {item, false, v}; }
CommittedAccess W(ItemId item, Version v) { return {item, true, v}; }

TEST(HistoryRecorderTest, DisabledRecordsNothing) {
  HistoryRecorder rec;
  rec.RecordCommit(T(1), {W(0, 1)});
  EXPECT_TRUE(rec.transactions().empty());
  rec.set_enabled(true);
  rec.RecordCommit(T(2), {W(0, 1)});
  EXPECT_EQ(rec.transactions().size(), 1u);
}

TEST(SerializabilityTest, EmptyHistoryOk) {
  EXPECT_TRUE(CheckConflictSerializable({}).ok());
}

TEST(SerializabilityTest, SimpleChainOk) {
  std::vector<CommittedTxn> h = {
      {T(1), {R(0, 0), W(0, 1)}},
      {T(2), {R(0, 1), W(0, 2)}},
      {T(3), {R(0, 2)}},
  };
  EXPECT_TRUE(CheckConflictSerializable(h).ok());
}

TEST(SerializabilityTest, RwCycleDetected) {
  // T1 reads x@0 and writes y@1; T2 reads y@0 and writes x@1.
  // rw edges: T1 -> T2 (T1 read x@0, T2 wrote x@1)
  //           T2 -> T1 (T2 read y@0, T1 wrote y@1)  => cycle.
  std::vector<CommittedTxn> h = {
      {T(1), {R(0, 0), W(1, 1)}},
      {T(2), {R(1, 0), W(0, 1)}},
  };
  Status s = CheckConflictSerializable(h);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("cycle"), std::string::npos);
}

TEST(SerializabilityTest, LostUpdateDetected) {
  // Two transactions installed the same version of the same item.
  std::vector<CommittedTxn> h = {
      {T(1), {W(0, 1)}},
      {T(2), {W(0, 1)}},
  };
  Status s = CheckConflictSerializable(h);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("installed by both"), std::string::npos);
}

TEST(SerializabilityTest, DirtyReadDetected) {
  // A read of a version nobody committed (other than the initial 0).
  std::vector<CommittedTxn> h = {
      {T(1), {R(0, 5)}},
  };
  Status s = CheckConflictSerializable(h);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("never written"), std::string::npos);
}

TEST(SerializabilityTest, WwOrderRespected) {
  std::vector<CommittedTxn> h = {
      {T(1), {W(0, 1), W(1, 1)}},
      {T(2), {W(0, 2), W(1, 2)}},
  };
  EXPECT_TRUE(CheckConflictSerializable(h).ok());
}

TEST(SerializabilityTest, WwCrossCycleDetected) {
  // T1 writes x@1 then y@2; T2 writes y@1 then x@2: ww edges both ways.
  std::vector<CommittedTxn> h = {
      {T(1), {W(0, 1), W(1, 2)}},
      {T(2), {W(1, 1), W(0, 2)}},
  };
  EXPECT_FALSE(CheckConflictSerializable(h).ok());
}

TEST(SerializabilityTest, ConcurrentReadersShareVersion) {
  std::vector<CommittedTxn> h = {
      {T(1), {R(0, 0)}},
      {T(2), {R(0, 0)}},
      {T(3), {W(0, 1)}},
  };
  EXPECT_TRUE(CheckConflictSerializable(h).ok());
}

TEST(SerializabilityTest, SnapshotStyleReadOk) {
  // A reader that saw an old version while a later writer committed is
  // fine as long as no cycle forms (MVTO histories look like this).
  std::vector<CommittedTxn> h = {
      {T(1), {W(0, 1)}},
      {T(2), {W(0, 2)}},
      {T(3), {R(0, 1)}},  // reads the older version: serialized between
  };
  EXPECT_TRUE(CheckConflictSerializable(h).ok());
}

// Regression (rainbow_lint D1): CheckConflictSerializable returns the
// *first* inconsistency it sees while walking the per-item index. That
// index used to be an unordered_map, so which of two errors was
// reported depended on hash order. With the sorted map it is always
// the lowest ItemId, independent of access order in the history.
TEST(SerializabilityTest, FirstErrorIsLowestItemNotHashOrder) {
  std::vector<CommittedTxn> h = {
      {T(1), {R(5, 7)}},  // dirty read on item 5, seen first
      {T(2), {R(2, 9)}},  // dirty read on item 2
  };
  Status s = CheckConflictSerializable(h);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("item 2:"), std::string::npos) << s.message();
}

TEST(RenderHistoryTest, Renders) {
  std::vector<CommittedTxn> h = {{T(1), {R(0, 0), W(1, 1)}}};
  std::string out = RenderHistory(h);
  EXPECT_NE(out.find("T1@0"), std::string::npos);
  EXPECT_NE(out.find("r(0@v0)"), std::string::npos);
  EXPECT_NE(out.find("w(1@v1)"), std::string::npos);
}

}  // namespace
}  // namespace rainbow
