// Unit tests for InlineFunction, the allocation-lean callable backing
// the simulator's event queue: inline vs heap storage selection,
// move-only callables, move/destruction correctness, and results.

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <utility>

#include "common/inline_function.h"

namespace rainbow {
namespace {

using Fn = InlineFunction<int(), 48>;

TEST(InlineFunctionTest, EmptyIsFalsy) {
  Fn f;
  EXPECT_FALSE(f);
  EXPECT_FALSE(f.heap_allocated());
  Fn g = nullptr;
  EXPECT_FALSE(g);
}

TEST(InlineFunctionTest, SmallCaptureStaysInline) {
  int x = 41;
  Fn f = [x] { return x + 1; };
  ASSERT_TRUE(f);
  EXPECT_FALSE(f.heap_allocated());
  EXPECT_EQ(f(), 42);
}

TEST(InlineFunctionTest, OversizedCaptureFallsBackToHeap) {
  std::array<int, 64> big{};  // 256 bytes: over the 48-byte budget
  big[7] = 9;
  Fn f = [big] { return big[7]; };
  ASSERT_TRUE(f);
  EXPECT_TRUE(f.heap_allocated());
  EXPECT_EQ(f(), 9);
}

TEST(InlineFunctionTest, FitsInlineMatchesRuntimeChoice) {
  auto small = [] { return 1; };
  auto big = [a = std::array<int, 64>{}] { return a[0]; };
  EXPECT_TRUE(Fn::fits_inline<decltype(small)>());
  EXPECT_FALSE(Fn::fits_inline<decltype(big)>());
  static_assert(Fn::kInlineBytes == 48);
}

TEST(InlineFunctionTest, AcceptsMoveOnlyCallable) {
  auto p = std::make_unique<int>(7);
  Fn f = [p = std::move(p)] { return *p; };
  ASSERT_TRUE(f);
  EXPECT_FALSE(f.heap_allocated());  // unique_ptr is 8 bytes
  EXPECT_EQ(f(), 7);
}

TEST(InlineFunctionTest, MoveTransfersInlineState) {
  int calls = 0;
  Fn a = [&calls] { return ++calls; };
  Fn b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): moved-from is empty
  ASSERT_TRUE(b);
  EXPECT_EQ(b(), 1);
  EXPECT_EQ(b(), 2);

  Fn c;
  c = std::move(b);
  EXPECT_FALSE(b);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(c(), 3);
}

TEST(InlineFunctionTest, MoveTransfersHeapState) {
  std::array<int, 64> big{};
  big[0] = 5;
  Fn a = [big] { return big[0]; };
  ASSERT_TRUE(a.heap_allocated());
  Fn b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.heap_allocated());
  EXPECT_EQ(b(), 5);
}

TEST(InlineFunctionTest, MoveAssignmentDestroysPreviousTarget) {
  auto counted = std::make_shared<int>(0);
  struct Bump {
    std::shared_ptr<int> n;
    ~Bump() {
      if (n) ++*n;
    }
    Bump(std::shared_ptr<int> p) : n(std::move(p)) {}  // NOLINT
    Bump(Bump&& o) noexcept = default;
    int operator()() const { return *n; }
  };
  Fn f = Bump{counted};
  f = Fn([] { return 0; });
  // Exactly one live Bump was destroyed by the assignment.
  EXPECT_EQ(*counted, 1);
}

TEST(InlineFunctionTest, DestructorReleasesCapturedResources) {
  auto counted = std::make_shared<int>(42);
  EXPECT_EQ(counted.use_count(), 1);
  {
    Fn f = [counted] { return *counted; };
    EXPECT_EQ(counted.use_count(), 2);
    EXPECT_EQ(f(), 42);
  }
  EXPECT_EQ(counted.use_count(), 1);
}

TEST(InlineFunctionTest, ForwardsArgumentsAndReturn) {
  InlineFunction<std::string(const std::string&, int), 48> f =
      [](const std::string& s, int n) { return s + ":" + std::to_string(n); };
  EXPECT_EQ(f("ev", 3), "ev:3");
}

}  // namespace
}  // namespace rainbow
