// Lint fixture: unordered-container patterns that are LEGAL and must
// produce zero findings — order-independent reductions, lookups,
// sorted-copy iteration, and ordered containers feeding output.
#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

// Order-independent reduction: no output leaves the loop.
size_t TotalWaiters(const std::unordered_map<unsigned, std::vector<int>>& m) {
  size_t n = 0;
  for (const auto& [item, waiters] : m) n += waiters.size();
  return n;
}

// Lookup, not iteration.
int Find(const std::unordered_map<unsigned, int>& m, unsigned k) {
  auto it = m.find(k);
  return it == m.end() ? -1 : it->second;
}

// The sanctioned fix-it shape: range-construct a vector of entries
// (no emitting loop over the hash map), sort it, iterate the copy.
std::string RenderSorted(const std::unordered_map<unsigned, int>& m) {
  std::vector<std::pair<unsigned, int>> entries(m.begin(), m.end());
  std::sort(entries.begin(), entries.end());
  std::string out;
  for (const auto& [k, v] : entries) {
    out.append(std::to_string(k));
    out.append("=");
    out.append(std::to_string(v));
  }
  return out;
}

// Ordered container: iteration order is the key order, emit freely.
// (Named `ordered`, not `m`: rainbow_lint resolves declarations
// file-locally by name, so reusing an unordered-declared name for an
// ordered container in another function would look hash-ordered.)
std::string RenderMap(const std::map<unsigned, int>& ordered) {
  std::string out;
  for (const auto& [k, v] : ordered) out.append(std::to_string(k));
  return out;
}
