// Lint fixture: the PR-7 Wal::InDoubt bug, reduced. Recovery scanned a
// hash map and pushed the in-doubt transactions into the reinstatement
// list in iteration order — so the order recovery re-prepared them (and
// every trace line downstream) depended on the standard library's hash
// layout. rainbow_lint rule D1 must flag both loop shapes.
//
// EXPECT-LINT lines are consumed by tests/lint_test.cc: each names the
// rule that must fire on that exact line.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct TxnLogState {
  bool prepared = false;
  bool decided = false;
  unsigned txn = 0;
};

std::unordered_map<unsigned, TxnLogState> Scan();

std::vector<unsigned> InDoubt() {
  std::unordered_map<unsigned, TxnLogState> scanned = Scan();
  std::vector<unsigned> out;
  for (const auto& [txn, st] : scanned) {  // EXPECT-LINT: D1
    if (st.prepared && !st.decided) out.push_back(txn);
  }
  return out;  // hash order escapes into recovery-visible output
}

std::vector<unsigned> InDoubtViaCall() {
  std::vector<unsigned> out;
  // Iterating the returned temporary is exactly as hash-ordered as the
  // named variable above.
  for (const auto& [txn, st] : Scan()) {  // EXPECT-LINT: D1
    if (st.prepared && !st.decided) out.push_back(txn);
  }
  return out;
}

std::string RenderSeen(const std::unordered_set<unsigned>& seen) {
  std::string s;
  for (auto it = seen.begin(); it != seen.end(); ++it) {  // EXPECT-LINT: D1
    s.append(std::to_string(*it));
    s.append(",");
  }
  return s;
}
