// Lint fixture: wall-clock and entropy sources (rule D2). Inside src/
// the only legal time is the simulator's virtual clock and the only
// legal randomness is a seeded common/rng.h stream — anything below
// makes two runs with the same seed diverge.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

struct FakeSim {
  long now = 0;
  long time() const { return now; }  // member named `time` is fine
};

long VirtualNow(const FakeSim& sim) {
  return sim.time();  // no finding: member call, not ::time()
}

long WallClockNow() {
  auto t = std::chrono::steady_clock::now();  // EXPECT-LINT: D2
  return t.time_since_epoch().count();
}

long WallClockSystem() {
  auto now = std::chrono::system_clock::now();  // EXPECT-LINT: D2
  return now.time_since_epoch().count();
}

long CTime() {
  return static_cast<long>(time(nullptr));  // EXPECT-LINT: D2
}

int UnseededRand() {
  return std::rand();  // EXPECT-LINT: D2
}

unsigned TrueEntropy() {
  std::random_device rd;  // EXPECT-LINT: D2
  return rd();
}
