// Lint fixture: orderings and container keys derived from pointer
// values (rule D3). Allocator addresses differ run to run, so any
// pointer-keyed structure iterates (or compares) nondeterministically.
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

struct Site {
  unsigned id;
};

std::map<Site*, int> g_scores;               // EXPECT-LINT: D3
std::set<const Site*> g_live;                // EXPECT-LINT: D3
std::unordered_map<Site*, int> g_attempts;   // EXPECT-LINT: D3

// Stable-id keys are the fix — no finding.
std::map<unsigned, int> g_scores_by_id;

uint64_t OrderKey(const Site* s) {
  return reinterpret_cast<uintptr_t>(s);  // EXPECT-LINT: D3
}

// Pointers as *values* are fine; only keys order the container.
std::map<unsigned, Site*> g_by_id;
