// Lint fixture: std::hash-derived values feeding ordering or output
// (rule D4). Hash values are implementation-defined — libstdc++ and
// libc++ disagree, and so can two releases of the same library — so a
// trace, render, or recovery path that consumes them is only
// byte-identical by luck.
#include <algorithm>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

struct TxnId {
  unsigned seq = 0;
};

// Specialization DEFINITIONS are exempt: providing a hash for an
// unordered container is fine, consuming its value for order is not.
template <>
struct std::hash<TxnId> {
  size_t operator()(const TxnId& id) const noexcept {
    return std::hash<unsigned>()(id.seq) * 1000003u;
  }
};

void SortByHash(std::vector<std::string>& names) {
  std::sort(names.begin(), names.end(),
            [](const std::string& a, const std::string& b) {
              return std::hash<std::string>()(a) <  // EXPECT-LINT: D4
                     std::hash<std::string>()(b);   // EXPECT-LINT: D4
            });
}

size_t RenderBucket(const std::string& trace_key) {
  return std::hash<std::string>()(trace_key) % 16;  // EXPECT-LINT: D4
}
