// Lint fixture: suppression semantics. A reasoned allow-annotation
// on the finding line or the line above silences the finding (still
// counted against the budget); a reasonless one never suppresses and
// is itself flagged; a suppression with no matching finding is flagged
// as stale.
#include <string>
#include <unordered_map>
#include <vector>

std::unordered_map<unsigned, int> Snapshot();

std::vector<unsigned> SuppressedSameLine() {
  std::vector<unsigned> out;
  for (const auto& [k, v] : Snapshot()) out.push_back(k);  // RAINBOW_LINT(allow:D1 reason=caller sorts before rendering)
  return out;
}

std::vector<unsigned> SuppressedLineAbove() {
  std::vector<unsigned> out;
  // RAINBOW_LINT(allow:D1 reason=fed into a std::set downstream)
  for (const auto& [k, v] : Snapshot()) out.push_back(k);
  return out;
}

std::vector<unsigned> ReasonlessDoesNotSuppress() {
  std::vector<unsigned> out;
  // RAINBOW_LINT(allow:D1) — reasonless, flagged itself: EXPECT-LINT: LINT
  for (const auto& [k, v] : Snapshot()) out.push_back(k);  // EXPECT-LINT: D1
  return out;
}

int StaleSuppression() {
  // RAINBOW_LINT(allow:D2 reason=nothing uses a clock) EXPECT-LINT: LINT
  return 42;
}
