// Deliberately misannotated translation unit: reads and writes a
// RAINBOW_GUARDED_BY member without holding its mutex. The CI
// clang-thread-safety leg compiles this file with
// `-Wthread-safety -Werror` and asserts the compile FAILS — proving
// the gate actually rejects locking-discipline violations (a no-op
// macro expansion or a mis-wired flag would let it compile). Under
// GCC the annotations expand to nothing and the file is inert; it is
// never part of any build target.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace rainbow {

class Misannotated {
 public:
  // BAD: touches counter_ without mu_ — clang must reject this.
  int ReadWithoutLock() const { return counter_; }
  void IncrementWithoutLock() { ++counter_; }

  // Fine: the MutexLock scope holds mu_.
  int ReadLocked() {
    MutexLock l(mu_);
    return counter_;
  }

 private:
  mutable Mutex mu_;
  int counter_ RAINBOW_GUARDED_BY(mu_) = 0;
};

int DriveMisannotated() {
  Misannotated m;
  m.IncrementWithoutLock();
  return m.ReadWithoutLock() + m.ReadLocked();
}

}  // namespace rainbow
