// Tests for tools/lint (rainbow_lint): golden per-rule findings over
// the fixture files, the clean-run assertion over src/, and the
// suppression-budget machinery. The fixtures are the linter's
// regression corpus — tests/lint_fixtures/d1_wal_indoubt_hash_order.cc
// reproduces the PR-7 Wal::InDoubt hash-order bug and must stay
// flagged by D1 forever.
#include <algorithm>
#include <cctype>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "lint_core.h"

namespace rainbow {
namespace {

using lint::CheckBudget;
using lint::CollectSources;
using lint::Finding;
using lint::LintFile;
using lint::LintSource;
using lint::ParseBudget;
using lint::Report;

std::string FixtureDir() {
  return std::string(RAINBOW_SOURCE_DIR) + "/tests/lint_fixtures";
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Expected findings declared in the fixture itself: every line
/// containing "EXPECT-LINT: <rule>" must produce exactly one
/// unsuppressed finding of that rule on that line.
std::multiset<std::pair<int, std::string>> ExpectedFindings(
    const std::string& content) {
  std::multiset<std::pair<int, std::string>> out;
  std::stringstream ss(content);
  std::string line;
  int lineno = 0;
  while (std::getline(ss, line)) {
    ++lineno;
    size_t pos = 0;
    while ((pos = line.find("EXPECT-LINT:", pos)) != std::string::npos) {
      pos += std::strlen("EXPECT-LINT:");
      while (pos < line.size() && line[pos] == ' ') ++pos;
      size_t end = pos;
      while (end < line.size() && (std::isalnum(line[end]) != 0)) ++end;
      if (end > pos) out.emplace(lineno, line.substr(pos, end - pos));
    }
  }
  return out;
}

std::multiset<std::pair<int, std::string>> ActualFindings(const Report& r) {
  std::multiset<std::pair<int, std::string>> out;
  for (const Finding& f : r.findings) {
    if (!f.suppressed) out.emplace(f.line, f.rule);
  }
  return out;
}

TEST(LintFixtures, GoldenFindingsPerRule) {
  std::vector<std::string> fixtures = CollectSources(FixtureDir());
  ASSERT_FALSE(fixtures.empty());
  int checked = 0;
  for (const std::string& path : fixtures) {
    // thread_safety_fail.cc is a clang -Wthread-safety compile-fail
    // fixture, not a lint fixture.
    if (path.find("thread_safety_fail") != std::string::npos) continue;
    std::string content = ReadFileOrDie(path);
    Report report = LintSource(path, content);
    EXPECT_EQ(ActualFindings(report), ExpectedFindings(content))
        << "finding mismatch in " << path;
    ++checked;
  }
  EXPECT_GE(checked, 5) << "fixture corpus went missing";
}

// The acceptance fixture: the exact Wal::InDoubt shape PR 7 fixed
// (hash-map scan pushed into a recovery-visible list) must be caught
// by D1 in both its range-for and iterator-loop forms.
TEST(LintFixtures, WalInDoubtHashOrderPatternIsFlaggedByD1) {
  Report report =
      LintFile(FixtureDir() + "/d1_wal_indoubt_hash_order.cc");
  int d1 = 0;
  for (const Finding& f : report.findings) {
    if (f.rule == "D1" && !f.suppressed) ++d1;
  }
  EXPECT_EQ(d1, 3) << "range-for over a named hash map, over a returned "
                      "temporary, and an iterator loop must all be flagged";
}

TEST(LintFixtures, CleanPatternsStayClean) {
  Report report = LintFile(FixtureDir() + "/d1_clean_patterns.cc");
  EXPECT_EQ(report.Unsuppressed(), 0);
  EXPECT_TRUE(report.SuppressionsByRule().empty());
}

TEST(LintFixtures, SuppressionAccounting) {
  Report report = LintFile(FixtureDir() + "/suppressions.cc");
  auto by_rule = report.SuppressionsByRule();
  EXPECT_EQ(by_rule["D1"], 2) << "same-line and line-above suppressions";
  // The reasonless and the stale suppression are both LINT findings;
  // the reasonless one additionally leaves its D1 finding live.
  int lint = 0;
  int d1 = 0;
  for (const Finding& f : report.findings) {
    if (f.suppressed) continue;
    if (f.rule == "LINT") ++lint;
    if (f.rule == "D1") ++d1;
  }
  EXPECT_EQ(lint, 2);
  EXPECT_EQ(d1, 1);
}

// The repo gate: src/ must lint clean, and the suppressions in use
// must fit the checked-in budget. This is the same check the CI lint
// job runs via the CLI; having it in ctest means a finding fails the
// ordinary local build too.
TEST(LintSrcTree, RunsCleanWithinSuppressionBudget) {
  std::string src = std::string(RAINBOW_SOURCE_DIR) + "/src";
  Report report;
  std::vector<std::string> files = CollectSources(src);
  ASSERT_GT(files.size(), 50u) << "src/ walk looks broken";
  for (const std::string& f : files) {
    report.MergeFrom(LintFile(f));
  }
  EXPECT_TRUE(report.io_errors.empty());
  for (const Finding& f : report.findings) {
    EXPECT_TRUE(f.suppressed)
        << f.file << ":" << f.line << " [" << f.rule << "] " << f.message;
  }
  auto budget = ParseBudget(ReadFileOrDie(
      std::string(RAINBOW_SOURCE_DIR) + "/tools/lint/suppressions.budget"));
  EXPECT_TRUE(CheckBudget(report, budget).empty());
}

TEST(LintBudget, ParseAndEnforce) {
  auto budget = ParseBudget(
      "# comment\n"
      "D1 2\n"
      "D2 0   # trailing comment\n"
      "\n"
      "D4 1\n");
  EXPECT_EQ(budget.size(), 3u);
  EXPECT_EQ(budget["D1"], 2);
  EXPECT_EQ(budget["D2"], 0);
  EXPECT_EQ(budget["D4"], 1);
}

// Regression: the budget is a ceiling on *used* suppressions. Three
// suppressed D1 findings must fail a budget of two and pass a budget
// of three; a rule missing from the budget file allows zero.
TEST(LintBudget, SuppressionCountAboveBudgetFails) {
  std::string source =
      "#include <unordered_map>\n"
      "#include <vector>\n"
      "std::unordered_map<int, int> M();\n"
      "std::vector<int> A() {\n"
      "  std::vector<int> out;\n"
      "  // RAINBOW_LINT(allow:D1 reason=sorted by caller)\n"
      "  for (const auto& [k, v] : M()) out.push_back(k);\n"
      "  // RAINBOW_LINT(allow:D1 reason=sorted by caller)\n"
      "  for (const auto& [k, v] : M()) out.push_back(k);\n"
      "  // RAINBOW_LINT(allow:D1 reason=sorted by caller)\n"
      "  for (const auto& [k, v] : M()) out.push_back(k);\n"
      "  return out;\n"
      "}\n";
  Report report = LintSource("budget_probe.cc", source);
  EXPECT_EQ(report.Unsuppressed(), 0);
  EXPECT_EQ(report.SuppressionsByRule()["D1"], 3);

  EXPECT_FALSE(CheckBudget(report, ParseBudget("D1 2\n")).empty());
  EXPECT_TRUE(CheckBudget(report, ParseBudget("D1 3\n")).empty());
  // Rule absent from the budget file: zero allowed.
  EXPECT_FALSE(CheckBudget(report, ParseBudget("D2 5\n")).empty());
}

// D2's bench//tools/ exemption: the same source is a finding under
// src/ and clean under bench/.
TEST(LintRules, D2ExemptsBenchAndTools) {
  std::string source =
      "#include <chrono>\n"
      "long Now() {\n"
      "  return std::chrono::steady_clock::now().time_since_epoch().count();\n"
      "}\n";
  EXPECT_EQ(LintSource("src/common/clock.cc", source).Unsuppressed(), 1);
  EXPECT_EQ(LintSource("bench/bench_clock.cc", source).Unsuppressed(), 0);
  EXPECT_EQ(LintSource("tools/lint/probe.cc", source).Unsuppressed(), 0);
}

}  // namespace
}  // namespace rainbow
