#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "cc/lock_manager.h"

namespace rainbow {
namespace {

TxnId T(uint64_t n) { return TxnId{0, n}; }
// Timestamp ordered by n: smaller n = older transaction.
TxnTimestamp Ts(int64_t n) { return TxnTimestamp{n, 0}; }

/// Captures the grant outcome of a request.
struct Probe {
  std::optional<CcGrant> grant;
  CcCallback cb() {
    return [this](const CcGrant& g) { grant = g; };
  }
  bool granted() const { return grant.has_value() && grant->granted; }
  bool denied() const { return grant.has_value() && !grant->granted; }
  bool pending() const { return !grant.has_value(); }
};

struct VictimLog {
  std::vector<std::pair<TxnId, DenyReason>> victims;
  void Attach(CcEngine& engine) {
    engine.set_victim_handler([this](TxnId t, DenyReason r) {
      victims.emplace_back(t, r);
    });
  }
};

TEST(LockManagerTest, SharedLocksCompatible) {
  LockManager lm(DeadlockPolicy::kWaitDie);
  Probe p1, p2;
  lm.RequestRead(T(1), Ts(1), 7, p1.cb());
  lm.RequestRead(T(2), Ts(2), 7, p2.cb());
  EXPECT_TRUE(p1.granted());
  EXPECT_TRUE(p2.granted());
  EXPECT_EQ(lm.HoldersOf(7).size(), 2u);
}

TEST(LockManagerTest, ExclusiveConflicts) {
  LockManager lm(DeadlockPolicy::kTimeoutOnly);
  Probe p1, p2, p3;
  lm.RequestWrite(T(1), Ts(1), 7, p1.cb());
  EXPECT_TRUE(p1.granted());
  lm.RequestRead(T(2), Ts(2), 7, p2.cb());
  lm.RequestWrite(T(3), Ts(3), 7, p3.cb());
  EXPECT_TRUE(p2.pending());
  EXPECT_TRUE(p3.pending());
  EXPECT_EQ(lm.num_waiting(), 2u);
}

TEST(LockManagerTest, ReleaseWakesFifo) {
  LockManager lm(DeadlockPolicy::kTimeoutOnly);
  Probe p1, p2, p3;
  lm.RequestWrite(T(1), Ts(1), 7, p1.cb());
  lm.RequestRead(T(2), Ts(2), 7, p2.cb());
  lm.RequestWrite(T(3), Ts(3), 7, p3.cb());
  lm.Finish(T(1), true);
  // FIFO: the read is granted; the write behind it still waits.
  EXPECT_TRUE(p2.granted());
  EXPECT_TRUE(p3.pending());
  lm.Finish(T(2), true);
  EXPECT_TRUE(p3.granted());
}

TEST(LockManagerTest, ReentrantRequestGranted) {
  LockManager lm(DeadlockPolicy::kWaitDie);
  Probe p1, p2;
  lm.RequestWrite(T(1), Ts(1), 7, p1.cb());
  lm.RequestRead(T(1), Ts(1), 7, p2.cb());  // X covers S
  EXPECT_TRUE(p2.granted());
}

TEST(LockManagerTest, UpgradeWhenSoleHolder) {
  LockManager lm(DeadlockPolicy::kWaitDie);
  Probe p1, p2;
  lm.RequestRead(T(1), Ts(1), 7, p1.cb());
  lm.RequestWrite(T(1), Ts(1), 7, p2.cb());
  EXPECT_TRUE(p2.granted());
  auto holders = lm.HoldersOf(7);
  ASSERT_EQ(holders.size(), 1u);
  EXPECT_EQ(holders[0].second, LockManager::Mode::kExclusive);
}

TEST(LockManagerTest, UpgradeWaitsForOtherReaders) {
  LockManager lm(DeadlockPolicy::kTimeoutOnly);
  Probe p1, p2, up;
  lm.RequestRead(T(1), Ts(1), 7, p1.cb());
  lm.RequestRead(T(2), Ts(2), 7, p2.cb());
  lm.RequestWrite(T(1), Ts(1), 7, up.cb());
  EXPECT_TRUE(up.pending());
  lm.Finish(T(2), false);
  EXPECT_TRUE(up.granted());
}

// --- wait-die ---

TEST(LockManagerWaitDie, YoungerRequesterDies) {
  LockManager lm(DeadlockPolicy::kWaitDie);
  Probe older, younger;
  lm.RequestWrite(T(1), Ts(1), 7, older.cb());
  lm.RequestWrite(T(2), Ts(2), 7, younger.cb());
  ASSERT_TRUE(younger.denied());
  EXPECT_EQ(younger.grant->reason, DenyReason::kDeadlockVictim);
  EXPECT_EQ(lm.denials(), 1u);
}

TEST(LockManagerWaitDie, OlderRequesterWaits) {
  LockManager lm(DeadlockPolicy::kWaitDie);
  Probe younger, older;
  lm.RequestWrite(T(2), Ts(2), 7, younger.cb());
  lm.RequestWrite(T(1), Ts(1), 7, older.cb());
  EXPECT_TRUE(older.pending());
  lm.Finish(T(2), true);
  EXPECT_TRUE(older.granted());
}

TEST(LockManagerWaitDie, MixedHoldersYoungestWins) {
  LockManager lm(DeadlockPolicy::kWaitDie);
  Probe a, b, req;
  lm.RequestRead(T(1), Ts(1), 7, a.cb());
  lm.RequestRead(T(3), Ts(3), 7, b.cb());
  // T2 wants X: older than T3 but younger than T1 -> dies.
  lm.RequestWrite(T(2), Ts(2), 7, req.cb());
  EXPECT_TRUE(req.denied());
}

// --- wound-wait ---

TEST(LockManagerWoundWait, OlderWoundsYoungerHolder) {
  LockManager lm(DeadlockPolicy::kWoundWait);
  VictimLog victims;
  victims.Attach(lm);
  Probe younger, older;
  lm.RequestWrite(T(2), Ts(2), 7, younger.cb());
  lm.RequestWrite(T(1), Ts(1), 7, older.cb());
  // The younger holder is wounded; the older requester gets the lock.
  ASSERT_EQ(victims.victims.size(), 1u);
  EXPECT_EQ(victims.victims[0].first, T(2));
  EXPECT_EQ(victims.victims[0].second, DenyReason::kWounded);
  EXPECT_TRUE(older.granted());
  EXPECT_EQ(lm.wounds(), 1u);
}

TEST(LockManagerWoundWait, YoungerRequesterWaits) {
  LockManager lm(DeadlockPolicy::kWoundWait);
  VictimLog victims;
  victims.Attach(lm);
  Probe older, younger;
  lm.RequestWrite(T(1), Ts(1), 7, older.cb());
  lm.RequestWrite(T(2), Ts(2), 7, younger.cb());
  EXPECT_TRUE(younger.pending());
  EXPECT_TRUE(victims.victims.empty());
  lm.Finish(T(1), true);
  EXPECT_TRUE(younger.granted());
}

TEST(LockManagerWoundWait, PreparedHolderIsImmune) {
  LockManager lm(DeadlockPolicy::kWoundWait);
  VictimLog victims;
  victims.Attach(lm);
  Probe younger, older;
  lm.RequestWrite(T(2), Ts(2), 7, younger.cb());
  lm.MarkPrepared(T(2));
  lm.RequestWrite(T(1), Ts(1), 7, older.cb());
  EXPECT_TRUE(victims.victims.empty());
  EXPECT_TRUE(older.pending());  // waits for the prepared holder
  lm.Finish(T(2), true);
  EXPECT_TRUE(older.granted());
}

// --- local waits-for-graph detection ---

TEST(LockManagerWfg, DetectsTwoTxnCycle) {
  LockManager lm(DeadlockPolicy::kLocalWfg);
  VictimLog victims;
  victims.Attach(lm);
  Probe a1, b2, a2, b1;
  lm.RequestWrite(T(1), Ts(1), 100, a1.cb());
  lm.RequestWrite(T(2), Ts(2), 200, b2.cb());
  lm.RequestWrite(T(1), Ts(1), 200, a2.cb());  // T1 waits for T2
  EXPECT_TRUE(a2.pending());
  lm.RequestWrite(T(2), Ts(2), 100, b1.cb());  // T2 waits for T1: cycle
  // Youngest (T2) must be the victim: either its request was denied
  // synchronously or it was aborted via the victim channel.
  bool b1_denied = b1.denied();
  bool t2_victim = !victims.victims.empty() &&
                   victims.victims[0].first == T(2);
  EXPECT_TRUE(b1_denied || t2_victim);
  EXPECT_EQ(lm.wfg_victims(), 1u);
  // A denied requester keeps its earlier holds until the coordinator
  // aborts it globally (strictness); after that T1 proceeds.
  if (b1_denied) lm.Finish(T(2), false);
  EXPECT_TRUE(a2.granted());
}

TEST(LockManagerWfg, NoFalsePositiveWithoutCycle) {
  LockManager lm(DeadlockPolicy::kLocalWfg);
  VictimLog victims;
  victims.Attach(lm);
  Probe p1, p2, p3;
  lm.RequestWrite(T(1), Ts(1), 7, p1.cb());
  lm.RequestWrite(T(2), Ts(2), 7, p2.cb());
  lm.RequestWrite(T(3), Ts(3), 7, p3.cb());
  EXPECT_TRUE(victims.victims.empty());
  EXPECT_EQ(lm.wfg_victims(), 0u);
}

TEST(LockManagerWfg, ThreeTxnCycleBroken) {
  LockManager lm(DeadlockPolicy::kLocalWfg);
  VictimLog victims;
  victims.Attach(lm);
  Probe x, y, z, xw, yw, zw;
  lm.RequestWrite(T(1), Ts(1), 1, x.cb());
  lm.RequestWrite(T(2), Ts(2), 2, y.cb());
  lm.RequestWrite(T(3), Ts(3), 3, z.cb());
  lm.RequestWrite(T(1), Ts(1), 2, xw.cb());  // 1 -> 2
  lm.RequestWrite(T(2), Ts(2), 3, yw.cb());  // 2 -> 3
  lm.RequestWrite(T(3), Ts(3), 1, zw.cb());  // 3 -> 1: cycle
  EXPECT_EQ(lm.wfg_victims(), 1u);
  // The youngest on the cycle is T3.
  bool t3_gone = zw.denied() ||
                 (!victims.victims.empty() && victims.victims[0].first == T(3));
  EXPECT_TRUE(t3_gone);
}

// --- release semantics ---

TEST(LockManagerTest, FinishRemovesQueuedRequests) {
  LockManager lm(DeadlockPolicy::kTimeoutOnly);
  Probe p1, p2;
  lm.RequestWrite(T(1), Ts(1), 7, p1.cb());
  lm.RequestWrite(T(2), Ts(2), 7, p2.cb());
  EXPECT_TRUE(p2.pending());
  lm.Finish(T(2), false);  // abort the waiter
  EXPECT_EQ(lm.num_waiting(), 0u);
  // Its callback must NOT fire later.
  lm.Finish(T(1), true);
  EXPECT_TRUE(p2.pending());
  EXPECT_FALSE(lm.Tracks(T(2)));
}

TEST(LockManagerTest, FinishUnknownTxnIsNoop) {
  LockManager lm(DeadlockPolicy::kWaitDie);
  lm.Finish(T(99), false);
  EXPECT_FALSE(lm.Tracks(T(99)));
}

TEST(LockManagerTest, TracksLifecycle) {
  LockManager lm(DeadlockPolicy::kWaitDie);
  Probe p;
  EXPECT_FALSE(lm.Tracks(T(1)));
  lm.RequestRead(T(1), Ts(1), 7, p.cb());
  EXPECT_TRUE(lm.Tracks(T(1)));
  lm.Finish(T(1), true);
  EXPECT_FALSE(lm.Tracks(T(1)));
  EXPECT_TRUE(lm.HoldersOf(7).empty());
}

}  // namespace
}  // namespace rainbow
