#include <gtest/gtest.h>

#include <optional>

#include "cc/mvto_manager.h"

namespace rainbow {
namespace {

TxnId T(uint64_t n) { return TxnId{0, n}; }
TxnTimestamp Ts(int64_t n) { return TxnTimestamp{n, 0}; }

struct Probe {
  std::optional<CcGrant> grant;
  CcCallback cb() {
    return [this](const CcGrant& g) { grant = g; };
  }
  bool granted() const { return grant.has_value() && grant->granted; }
  bool denied() const { return grant.has_value() && !grant->granted; }
  bool pending() const { return !grant.has_value(); }
};

TEST(MvtoTest, ReadServesInitialVersion) {
  MvtoManager mvto;
  mvto.LoadInitial(7, 42, 0);
  Probe r;
  mvto.RequestRead(T(1), Ts(1), 7, r.cb());
  ASSERT_TRUE(r.granted());
  EXPECT_TRUE(r.grant->has_value);
  EXPECT_EQ(r.grant->value, 42);
  EXPECT_EQ(r.grant->version, 0u);
}

TEST(MvtoTest, ReadSeesVersionAtOrBeforeItsTimestamp) {
  MvtoManager mvto;
  mvto.LoadInitial(7, 10, 0);
  // T2 writes 20 (version 1), commits.
  Probe w;
  mvto.RequestWrite(T(2), Ts(2), 7, w.cb());
  mvto.OnApply(T(2), 7, 20, 1);
  mvto.Finish(T(2), true);
  // T5 writes 30 (version 2), commits.
  Probe w2;
  mvto.RequestWrite(T(5), Ts(5), 7, w2.cb());
  mvto.OnApply(T(5), 7, 30, 2);
  mvto.Finish(T(5), true);
  EXPECT_EQ(mvto.num_versions(7), 3u);

  // A read at ts 3 sees version written at ts 2 — even though a later
  // version exists. This is the MV advantage: no rejection.
  Probe r3, r9, r1;
  mvto.RequestRead(T(3), Ts(3), 7, r3.cb());
  ASSERT_TRUE(r3.granted());
  EXPECT_EQ(r3.grant->value, 20);
  EXPECT_EQ(r3.grant->version, 1u);

  mvto.RequestRead(T(9), Ts(9), 7, r9.cb());
  EXPECT_EQ(r9.grant->value, 30);

  mvto.RequestRead(T(1), Ts(1), 7, r1.cb());
  EXPECT_EQ(r1.grant->value, 10);  // before both writes
}

TEST(MvtoTest, OldReadNeverRejected) {
  MvtoManager mvto;
  mvto.LoadInitial(7, 10, 0);
  Probe w;
  mvto.RequestWrite(T(5), Ts(5), 7, w.cb());
  mvto.OnApply(T(5), 7, 50, 1);
  mvto.Finish(T(5), true);
  // Under basic TSO a read at ts 3 would be rejected; MVTO serves the
  // old version.
  Probe r;
  mvto.RequestRead(T(3), Ts(3), 7, r.cb());
  ASSERT_TRUE(r.granted());
  EXPECT_EQ(r.grant->value, 10);
  EXPECT_EQ(mvto.rejections(), 0u);
}

TEST(MvtoTest, WriteRejectedWhenLaterReadSawPredecessor) {
  MvtoManager mvto;
  mvto.LoadInitial(7, 10, 0);
  Probe r;
  mvto.RequestRead(T(5), Ts(5), 7, r.cb());  // rts(initial) = 5
  Probe w;
  mvto.RequestWrite(T(3), Ts(3), 7, w.cb());
  ASSERT_TRUE(w.denied());
  EXPECT_EQ(w.grant->reason, DenyReason::kTsoTooLate);
  EXPECT_EQ(mvto.rejections(), 1u);
}

TEST(MvtoTest, WriteAfterReaderIsFine) {
  MvtoManager mvto;
  mvto.LoadInitial(7, 10, 0);
  Probe r, w;
  mvto.RequestRead(T(3), Ts(3), 7, r.cb());
  mvto.RequestWrite(T(5), Ts(5), 7, w.cb());
  EXPECT_TRUE(w.granted());
}

TEST(MvtoTest, ReadWaitsForOlderPendingWrite) {
  MvtoManager mvto;
  mvto.LoadInitial(7, 10, 0);
  Probe w, r;
  mvto.RequestWrite(T(2), Ts(2), 7, w.cb());
  mvto.RequestRead(T(4), Ts(4), 7, r.cb());
  EXPECT_TRUE(r.pending());
  mvto.OnApply(T(2), 7, 20, 1);
  mvto.Finish(T(2), true);
  ASSERT_TRUE(r.granted());
  EXPECT_EQ(r.grant->value, 20);  // observes the committed write
}

TEST(MvtoTest, ReadProceedsAfterPendingWriterAborts) {
  MvtoManager mvto;
  mvto.LoadInitial(7, 10, 0);
  Probe w, r;
  mvto.RequestWrite(T(2), Ts(2), 7, w.cb());
  mvto.RequestRead(T(4), Ts(4), 7, r.cb());
  EXPECT_TRUE(r.pending());
  mvto.Finish(T(2), false);  // abort: no OnApply
  ASSERT_TRUE(r.granted());
  EXPECT_EQ(r.grant->value, 10);
  EXPECT_EQ(mvto.num_versions(7), 1u);
}

TEST(MvtoTest, SecondPendingWriteWaits) {
  MvtoManager mvto;
  mvto.LoadInitial(7, 10, 0);
  Probe w1, w2;
  mvto.RequestWrite(T(2), Ts(2), 7, w1.cb());
  mvto.RequestWrite(T(4), Ts(4), 7, w2.cb());
  EXPECT_TRUE(w2.pending());
  mvto.OnApply(T(2), 7, 20, 1);
  mvto.Finish(T(2), true);
  EXPECT_TRUE(w2.granted());
}

TEST(MvtoTest, ReadOnlyNeverBlocksOlderThanAllPending) {
  MvtoManager mvto;
  mvto.LoadInitial(7, 10, 0);
  Probe w, r;
  mvto.RequestWrite(T(5), Ts(5), 7, w.cb());
  mvto.RequestRead(T(3), Ts(3), 7, r.cb());
  ASSERT_TRUE(r.granted());  // pending write is younger: irrelevant
  EXPECT_EQ(r.grant->value, 10);
}

TEST(MvtoTest, UnknownItemAutoSeeds) {
  MvtoManager mvto;
  Probe r;
  mvto.RequestRead(T(1), Ts(1), 99, r.cb());
  ASSERT_TRUE(r.granted());
  EXPECT_EQ(r.grant->value, 0);
}

}  // namespace
}  // namespace rainbow
