// Nemesis fuzzer (fault/nemesis.h): deterministic generation, schedule
// well-formedness, clean runs under the fixed protocol stack, and the
// flagship bug hunt — with the incarnation-epoch fence disabled the
// fuzzer must find the resurrection violation, shrink it to a handful of
// fault events, and emit a script that reproduces on replay.

#include <gtest/gtest.h>

#include "fault/fault_script.h"
#include "fault/nemesis.h"

namespace rainbow {
namespace {

TEST(NemesisProfileTest, ByNameResolvesBuiltins) {
  for (const char* name : {"calm", "flaky", "havoc"}) {
    Result<NemesisProfile> p = NemesisProfile::ByName(name);
    ASSERT_TRUE(p.ok()) << name;
    EXPECT_EQ(p->name, name);
  }
  EXPECT_FALSE(NemesisProfile::ByName("tempest").ok());
}

TEST(NemesisTest, GenerationIsDeterministic) {
  NemesisOptions opts;
  opts.seed = 77;
  opts.profile = "havoc";
  Result<Nemesis> a = Nemesis::Make(opts);
  Result<Nemesis> b = Nemesis::Make(opts);
  ASSERT_TRUE(a.ok() && b.ok());
  for (uint32_t round = 0; round < 5; ++round) {
    const uint64_t seed = a->RoundSeed(round);
    EXPECT_EQ(seed, b->RoundSeed(round));
    std::vector<FaultEvent> ea = Nemesis::Flatten(a->GenerateWindows(seed));
    std::vector<FaultEvent> eb = Nemesis::Flatten(b->GenerateWindows(seed));
    EXPECT_EQ(ea, eb) << "round " << round;
  }
  // Different rounds draw different schedules.
  EXPECT_NE(Nemesis::Flatten(a->GenerateWindows(a->RoundSeed(0))),
            Nemesis::Flatten(a->GenerateWindows(a->RoundSeed(1))));
}

TEST(NemesisTest, SchedulesAreWellFormedAndSelfHealing) {
  NemesisOptions opts;
  opts.seed = 5;
  opts.profile = "havoc";
  Result<Nemesis> n = Nemesis::Make(opts);
  ASSERT_TRUE(n.ok());
  const NemesisProfile havoc = NemesisProfile::Havoc();
  for (uint32_t round = 0; round < 10; ++round) {
    std::vector<FaultWindow> windows =
        n->GenerateWindows(n->RoundSeed(round));
    EXPECT_GE(static_cast<int>(windows.size()), havoc.min_windows);
    EXPECT_LE(static_cast<int>(windows.size()), havoc.max_windows);
    for (const FaultWindow& w : windows) {
      // Every window is paired: whatever the start breaks, the end
      // repairs — this is what makes the ddmin shrinker sound.
      ASSERT_TRUE(w.end.has_value());
      EXPECT_LT(w.start.at, w.end->at);
      EXPECT_LE(w.end->at, havoc.horizon);
      switch (w.start.kind) {
        case FaultEvent::Kind::kCrashSite:
          EXPECT_EQ(w.end->kind, FaultEvent::Kind::kRecoverSite);
          EXPECT_EQ(w.end->site, w.start.site);
          EXPECT_LE(w.end->at - w.start.at, havoc.crash_max);
          break;
        case FaultEvent::Kind::kPartition:
          EXPECT_EQ(w.end->kind, FaultEvent::Kind::kHeal);
          EXPECT_GE(w.start.groups.size(), 2u);
          break;
        case FaultEvent::Kind::kLinkDown:
          EXPECT_EQ(w.end->kind, FaultEvent::Kind::kLinkUp);
          break;
        case FaultEvent::Kind::kLinkDownOneWay:
          EXPECT_EQ(w.end->kind, FaultEvent::Kind::kLinkUpOneWay);
          break;
        case FaultEvent::Kind::kLinkLoss:
          EXPECT_LE(w.start.amount, havoc.max_loss);
          EXPECT_EQ(w.end->amount, 0.0);
          break;
        case FaultEvent::Kind::kLinkDup:
          EXPECT_LE(w.start.amount, havoc.max_dup);
          EXPECT_EQ(w.end->amount, 0.0);
          break;
        case FaultEvent::Kind::kLinkDelay:
          EXPECT_LE(w.start.amount, havoc.max_delay_multiplier);
          EXPECT_EQ(w.end->amount, 1.0);
          break;
        case FaultEvent::Kind::kLinkReorder:
          EXPECT_LE(w.start.amount,
                    static_cast<double>(havoc.max_reorder_jitter));
          EXPECT_EQ(w.end->amount, 0.0);
          break;
        default:
          FAIL() << "unexpected window start kind";
      }
    }
    // Flatten is time-ordered.
    std::vector<FaultEvent> events = Nemesis::Flatten(windows);
    for (size_t i = 1; i < events.size(); ++i) {
      EXPECT_LE(events[i - 1].at, events[i].at);
    }
  }
}

TEST(NemesisTest, CleanUnderFlakyProfileWithFencing) {
  // The CI smoke configuration: default (correct) protocol stack,
  // moderate fault intensity, fixed seed. Must find nothing.
  NemesisOptions opts;
  opts.seed = 1;
  opts.profile = "flaky";
  opts.rounds = 5;
  Result<Nemesis> n = Nemesis::Make(opts);
  ASSERT_TRUE(n.ok());
  NemesisResult r = n->Run();
  EXPECT_FALSE(r.found_violation) << r.report;
  EXPECT_EQ(r.rounds_run, 5u);
  EXPECT_EQ(r.total_runs, 5u);
}

TEST(NemesisTest, FindsAndShrinksResurrectionBugWithoutFencing) {
  // The acceptance hunt: disable the incarnation-epoch fence (the PR-3
  // fix for the replica-resurrection bug) and let havoc-profile fuzzing
  // rediscover it. Seed 4 fails in its first round, which keeps this
  // test fast; determinism makes it stable.
  NemesisOptions opts;
  opts.seed = 4;
  opts.profile = "havoc";
  opts.rounds = 5;
  opts.shrink = true;
  opts.base_config.protocols.epoch_fencing = false;
  Result<Nemesis> n = Nemesis::Make(opts);
  ASSERT_TRUE(n.ok());
  NemesisResult r = n->Run();
  ASSERT_TRUE(r.found_violation);
  EXPECT_FALSE(r.report.empty());
  EXPECT_NE(r.report, "ok");
  // Shrunk to a minimal repro: a crash/recover blip or little more.
  EXPECT_LE(r.minimized.size(), 5u);
  EXPECT_LE(r.minimized.size(), r.failing_schedule.size());
  EXPECT_FALSE(r.repro_script.empty());

  // The emitted script reproduces the violation on replay...
  Result<Nemesis> replayer = Nemesis::Make(opts);
  ASSERT_TRUE(replayer.ok());
  std::string report;
  Result<bool> reproduced =
      replayer->Replay(r.repro_script, r.failing_seed, &report);
  ASSERT_TRUE(reproduced.ok()) << reproduced.status();
  EXPECT_TRUE(*reproduced);
  EXPECT_NE(report, "ok");

  // ...and the fence, when enabled, stops the same schedule cold.
  NemesisOptions fenced = opts;
  fenced.base_config.protocols.epoch_fencing = true;
  Result<Nemesis> guard = Nemesis::Make(fenced);
  ASSERT_TRUE(guard.ok());
  Result<bool> still_fails =
      guard->Replay(r.repro_script, r.failing_seed, &report);
  ASSERT_TRUE(still_fails.ok());
  EXPECT_FALSE(*still_fails) << report;
}

TEST(NemesisTest, HuntIsDeterministic) {
  NemesisOptions opts;
  opts.seed = 4;
  opts.profile = "havoc";
  opts.rounds = 3;
  opts.shrink = true;
  opts.base_config.protocols.epoch_fencing = false;
  Result<Nemesis> a = Nemesis::Make(opts);
  Result<Nemesis> b = Nemesis::Make(opts);
  ASSERT_TRUE(a.ok() && b.ok());
  NemesisResult ra = a->Run();
  NemesisResult rb = b->Run();
  ASSERT_TRUE(ra.found_violation);
  EXPECT_EQ(ra.failing_round, rb.failing_round);
  EXPECT_EQ(ra.failing_seed, rb.failing_seed);
  EXPECT_EQ(ra.repro_script, rb.repro_script);
  EXPECT_EQ(ra.total_runs, rb.total_runs);
}

TEST(NemesisTest, StorageWindowsAreWellFormedAndOptIn) {
  // With storage faults off (the default), schedules never contain
  // storage events and are byte-identical to the pre-option generator.
  NemesisOptions off;
  off.seed = 12;
  off.profile = "calm";
  Result<Nemesis> base = Nemesis::Make(off);
  ASSERT_TRUE(base.ok());

  NemesisOptions on = off;
  on.storage_faults = true;
  Result<Nemesis> storage = Nemesis::Make(on);
  ASSERT_TRUE(storage.ok());

  const double cap = NemesisProfile::Calm().max_storage_fault;
  auto is_storage = [](FaultEvent::Kind k) {
    return k == FaultEvent::Kind::kStorageTorn ||
           k == FaultEvent::Kind::kStorageShort ||
           k == FaultEvent::Kind::kStorageLost ||
           k == FaultEvent::Kind::kStorageReadFlip;
  };
  size_t storage_windows = 0;
  for (uint32_t round = 0; round < 20; ++round) {
    const uint64_t seed = base->RoundSeed(round);
    for (const FaultWindow& w : base->GenerateWindows(seed)) {
      EXPECT_FALSE(is_storage(w.start.kind));
    }
    for (const FaultWindow& w : storage->GenerateWindows(seed)) {
      if (!is_storage(w.start.kind)) continue;
      ++storage_windows;
      // Self-healing: the end event disarms the same kind on the site.
      ASSERT_TRUE(w.end.has_value());
      EXPECT_EQ(w.end->kind, w.start.kind);
      EXPECT_EQ(w.end->site, w.start.site);
      EXPECT_EQ(w.end->amount, 0.0);
      EXPECT_GT(w.start.amount, 0.0);
      EXPECT_LE(w.start.amount, cap);
    }
  }
  EXPECT_GT(storage_windows, 0u);
}

TEST(NemesisTest, CleanStorageHuntWithChecksums) {
  // The storage-robustness smoke: torn/short/lost writes and read bit
  // flips against the checksummed doublewrite disk must never produce
  // an observable invariant violation.
  NemesisOptions opts;
  opts.seed = 21;
  opts.profile = "calm";
  opts.rounds = 3;
  opts.storage_faults = true;
  Result<Nemesis> n = Nemesis::Make(opts);
  ASSERT_TRUE(n.ok());
  NemesisResult r = n->Run();
  EXPECT_FALSE(r.found_violation) << r.report;
  EXPECT_EQ(r.rounds_run, 3u);
}

TEST(NemesisTest, FindsTornPageBugWithoutChecksums) {
  // The storage acceptance hunt: disable per-page CRC (the defense that
  // makes torn and short writes detectable) and let calm-profile fuzzing
  // with storage faults surface silent page corruption as an observable
  // oracle violation. Seed 1 fails quickly; the shrinker keeps the
  // torn-write window in the minimal schedule.
  NemesisOptions opts;
  opts.seed = 1;
  opts.profile = "calm";
  opts.rounds = 5;
  opts.shrink = true;
  opts.storage_faults = true;
  opts.base_config.protocols.page_checksums = false;
  Result<Nemesis> n = Nemesis::Make(opts);
  ASSERT_TRUE(n.ok());
  NemesisResult r = n->Run();
  ASSERT_TRUE(r.found_violation);
  EXPECT_FALSE(r.repro_script.empty());
  EXPECT_LE(r.minimized.size(), r.failing_schedule.size());
  bool has_storage_fault = false;
  for (const FaultEvent& e : r.minimized) {
    if (e.kind == FaultEvent::Kind::kStorageTorn ||
        e.kind == FaultEvent::Kind::kStorageShort ||
        e.kind == FaultEvent::Kind::kStorageLost ||
        e.kind == FaultEvent::Kind::kStorageReadFlip) {
      has_storage_fault = true;
    }
  }
  EXPECT_TRUE(has_storage_fault) << "minimal repro lost the storage fault";

  // The emitted script reproduces the violation on replay...
  Result<Nemesis> replayer = Nemesis::Make(opts);
  ASSERT_TRUE(replayer.ok());
  std::string report;
  Result<bool> reproduced =
      replayer->Replay(r.repro_script, r.failing_seed, &report);
  ASSERT_TRUE(reproduced.ok()) << reproduced.status();
  EXPECT_TRUE(*reproduced);
  EXPECT_NE(report, "ok");

  // ...and the checksum + doublewrite defense stops the same schedule.
  NemesisOptions guarded = opts;
  guarded.base_config.protocols.page_checksums = true;
  Result<Nemesis> guard = Nemesis::Make(guarded);
  ASSERT_TRUE(guard.ok());
  Result<bool> still_fails =
      guard->Replay(r.repro_script, r.failing_seed, &report);
  ASSERT_TRUE(still_fails.ok());
  EXPECT_FALSE(*still_fails) << report;
}

TEST(NemesisTest, ReplayRejectsMalformedScripts) {
  NemesisOptions opts;
  Result<Nemesis> n = Nemesis::Make(opts);
  ASSERT_TRUE(n.ok());
  EXPECT_FALSE(n->Replay("0 explode 3\n", 1, nullptr).ok());
}

}  // namespace
}  // namespace rainbow
