#include <gtest/gtest.h>

#include "net/latency_model.h"
#include "net/message.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace rainbow {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net_(&sim_, TestLatency(), Rng(7), &trace_) {
    for (SiteId s = 0; s < 4; ++s) {
      net_.RegisterHandler(s, [this, s](const Message& m) {
        received_[s].push_back(m);
      });
    }
  }

  static LatencyConfig TestLatency() {
    LatencyConfig cfg;
    cfg.distribution = LatencyDistribution::kFixed;
    cfg.mean = Millis(1);
    cfg.min = Micros(10);
    cfg.per_kb = 0;
    cfg.local = Micros(5);
    return cfg;
  }

  Simulator sim_;
  TraceLog trace_;
  Network net_;
  std::map<SiteId, std::vector<Message>> received_;
};

TEST_F(NetworkTest, DeliversWithLatency) {
  net_.Send(0, 1, Ack{TxnId{0, 1}});
  EXPECT_TRUE(received_[1].empty());
  sim_.RunToQuiescence();
  ASSERT_EQ(received_[1].size(), 1u);
  EXPECT_EQ(sim_.Now(), Millis(1));
  EXPECT_EQ(received_[1][0].from, 0u);
  EXPECT_EQ(received_[1][0].kind(), MessageKind::kAck);
}

TEST_F(NetworkTest, LocalDeliveryIsFastAndCountedSeparately) {
  net_.Send(2, 2, Ack{TxnId{2, 1}});
  sim_.RunToQuiescence();
  ASSERT_EQ(received_[2].size(), 1u);
  EXPECT_EQ(sim_.Now(), Micros(5));
  EXPECT_EQ(net_.stats().local, 1u);
  EXPECT_EQ(net_.stats().network_sent(), 0u);
}

TEST_F(NetworkTest, CrashedDestinationDropsInFlight) {
  net_.Send(0, 1, Ack{TxnId{0, 1}});
  // Crash strikes while the message is in flight.
  sim_.After(Micros(500), [&] { net_.SetSiteUp(1, false); });
  sim_.RunToQuiescence();
  EXPECT_TRUE(received_[1].empty());
  EXPECT_EQ(net_.stats().dropped[static_cast<size_t>(
                DropCause::kDestinationDown)],
            1u);
}

TEST_F(NetworkTest, CrashedSourceCannotSend) {
  net_.SetSiteUp(0, false);
  net_.Send(0, 1, Ack{TxnId{0, 1}});
  sim_.RunToQuiescence();
  EXPECT_TRUE(received_[1].empty());
  EXPECT_EQ(net_.stats().dropped[static_cast<size_t>(DropCause::kSourceDown)],
            1u);
}

TEST_F(NetworkTest, RecoveredSiteReceivesAgain) {
  net_.SetSiteUp(1, false);
  net_.Send(0, 1, Ack{TxnId{0, 1}});
  sim_.RunToQuiescence();
  EXPECT_TRUE(received_[1].empty());
  net_.SetSiteUp(1, true);
  net_.Send(0, 1, Ack{TxnId{0, 2}});
  sim_.RunToQuiescence();
  EXPECT_EQ(received_[1].size(), 1u);
}

TEST_F(NetworkTest, LinkFailureIsBidirectionalAndSelective) {
  net_.SetLinkUp(0, 1, false);
  net_.Send(0, 1, Ack{TxnId{0, 1}});
  net_.Send(1, 0, Ack{TxnId{1, 1}});
  net_.Send(0, 2, Ack{TxnId{0, 2}});
  sim_.RunToQuiescence();
  EXPECT_TRUE(received_[1].empty());
  EXPECT_TRUE(received_[0].empty());
  EXPECT_EQ(received_[2].size(), 1u);
  net_.SetLinkUp(0, 1, true);
  net_.Send(0, 1, Ack{TxnId{0, 3}});
  sim_.RunToQuiescence();
  EXPECT_EQ(received_[1].size(), 1u);
}

TEST_F(NetworkTest, PartitionSeparatesGroups) {
  net_.SetPartitions({{0, 1}, {2, 3}});
  EXPECT_TRUE(net_.Reachable(0, 1));
  EXPECT_FALSE(net_.Reachable(0, 2));
  EXPECT_TRUE(net_.Reachable(2, 3));
  net_.Send(0, 2, Ack{TxnId{0, 1}});
  net_.Send(0, 1, Ack{TxnId{0, 2}});
  sim_.RunToQuiescence();
  EXPECT_TRUE(received_[2].empty());
  EXPECT_EQ(received_[1].size(), 1u);
  EXPECT_EQ(net_.stats().dropped[static_cast<size_t>(DropCause::kPartition)],
            1u);

  net_.HealPartitions();
  net_.Send(0, 2, Ack{TxnId{0, 3}});
  sim_.RunToQuiescence();
  EXPECT_EQ(received_[2].size(), 1u);
}

TEST_F(NetworkTest, UnlistedSitesShareImplicitPartitionGroup) {
  net_.SetPartitions({{0}});
  // 1, 2, 3 are unlisted: they can talk to each other but not to 0.
  EXPECT_TRUE(net_.Reachable(1, 2));
  EXPECT_FALSE(net_.Reachable(0, 1));
}

TEST_F(NetworkTest, RandomLossDropsSome) {
  net_.set_loss_probability(0.5);
  for (int i = 0; i < 200; ++i) {
    net_.Send(0, 1, Ack{TxnId{0, static_cast<uint64_t>(i)}});
  }
  sim_.RunToQuiescence();
  size_t got = received_[1].size();
  EXPECT_GT(got, 50u);
  EXPECT_LT(got, 150u);
  EXPECT_EQ(got + net_.stats().dropped[static_cast<size_t>(
                      DropCause::kRandomLoss)],
            200u);
}

TEST_F(NetworkTest, StatsCountKindsAndBuckets) {
  net_.set_stats_bucket_width(Millis(1));
  net_.Send(0, 1, ReadRequest{TxnId{0, 1}, TxnTimestamp{1, 0}, 5});
  net_.Send(0, 1, Ack{TxnId{0, 1}});
  sim_.RunToQuiescence();
  EXPECT_EQ(net_.stats().by_kind[static_cast<size_t>(
                MessageKind::kReadRequest)],
            1u);
  EXPECT_EQ(net_.stats().by_kind[static_cast<size_t>(MessageKind::kAck)], 1u);
  EXPECT_GE(net_.stats().per_bucket.size(), 1u);
  EXPECT_EQ(net_.stats().per_bucket[0], 2u);
  EXPECT_GT(net_.stats().bytes, 0u);
}

TEST_F(NetworkTest, OneWayLinkSeversOnlyOneDirection) {
  net_.SetLinkUpOneWay(0, 1, false);
  net_.Send(0, 1, Ack{TxnId{0, 1}});
  net_.Send(1, 0, Ack{TxnId{1, 1}});
  sim_.RunToQuiescence();
  EXPECT_TRUE(received_[1].empty());
  EXPECT_EQ(received_[0].size(), 1u);
  EXPECT_EQ(net_.stats().dropped[static_cast<size_t>(DropCause::kLinkDown)],
            1u);
  net_.SetLinkUpOneWay(0, 1, true);
  net_.Send(0, 1, Ack{TxnId{0, 2}});
  sim_.RunToQuiescence();
  EXPECT_EQ(received_[1].size(), 1u);
}

TEST_F(NetworkTest, LinkDownDropInFlightIsTraced) {
  // Regression: the kLinkDown branch in Deliver() counted the drop but
  // never wrote the human-readable trace record, so a message that was
  // in flight when the link went down vanished from `--trace net`.
  trace_.set_enabled(true);
  net_.Send(0, 1, Ack{TxnId{0, 1}});
  sim_.After(Micros(500), [&] { net_.SetLinkUpOneWay(0, 1, false); });
  sim_.RunToQuiescence();
  EXPECT_TRUE(received_[1].empty());
  EXPECT_EQ(net_.stats().dropped[static_cast<size_t>(DropCause::kLinkDown)],
            1u);
  EXPECT_EQ(trace_.CountContaining("DROP(link down)"), 1u);
}

TEST_F(NetworkTest, InjectedDuplicateGetsItsOwnNetworkId) {
  // Regression: the injected copy used to ship with the original's
  // network id, making the two deliveries indistinguishable in traces.
  // The copy must carry a fresh `id` while keeping the same `rpc_id`
  // so RPC-layer duplicate suppression still recognizes it.
  LinkOverride o;
  o.dup_probability = 1.0;
  net_.SetLinkOverride(0, 1, o);
  net_.SendRpc(0, 1, Ack{TxnId{0, 1}}, /*rpc_id=*/77, /*is_reply=*/false);
  sim_.RunToQuiescence();
  ASSERT_EQ(received_[1].size(), 2u);
  EXPECT_NE(received_[1][0].id, received_[1][1].id);
  EXPECT_EQ(received_[1][0].rpc_id, 77u);
  EXPECT_EQ(received_[1][1].rpc_id, 77u);
}

TEST_F(NetworkTest, LossOverrideIsDirectional) {
  LinkOverride o;
  o.loss = 1.0;
  net_.SetLinkOverride(0, 1, o);
  net_.Send(0, 1, Ack{TxnId{0, 1}});
  net_.Send(1, 0, Ack{TxnId{1, 1}});
  sim_.RunToQuiescence();
  EXPECT_TRUE(received_[1].empty());
  EXPECT_EQ(received_[0].size(), 1u);
  EXPECT_EQ(net_.stats().dropped[static_cast<size_t>(DropCause::kLinkLoss)],
            1u);
}

TEST_F(NetworkTest, DelayMultiplierScalesOnlyTheOverriddenLink) {
  LinkOverride o;
  o.delay_multiplier = 4.0;
  net_.SetLinkOverride(0, 1, o);
  net_.Send(0, 1, Ack{TxnId{0, 1}});
  sim_.RunToQuiescence();
  EXPECT_EQ(sim_.Now(), Millis(4));  // 1ms fixed latency x4
  net_.Send(1, 0, Ack{TxnId{1, 1}});
  const SimTime before = sim_.Now();
  sim_.RunToQuiescence();
  EXPECT_EQ(sim_.Now() - before, Millis(1));  // reverse direction unscaled
}

TEST_F(NetworkTest, DupOverrideDeliversExtraCopiesAndCounts) {
  LinkOverride o;
  o.dup_probability = 1.0;
  net_.SetLinkOverride(0, 1, o);
  for (int i = 0; i < 10; ++i) {
    net_.Send(0, 1, Ack{TxnId{0, static_cast<uint64_t>(i)}});
  }
  sim_.RunToQuiescence();
  EXPECT_EQ(received_[1].size(), 20u);
  EXPECT_EQ(net_.stats().duplicated, 10u);
}

TEST_F(NetworkTest, ReorderJitterStaysBoundedAndReorders) {
  LinkOverride o;
  o.reorder_jitter = Millis(5);
  net_.SetLinkOverride(0, 1, o);
  for (int i = 0; i < 50; ++i) {
    net_.Send(0, 1, Ack{TxnId{0, static_cast<uint64_t>(i)}});
  }
  sim_.RunToQuiescence();
  ASSERT_EQ(received_[1].size(), 50u);
  // Every delivery lands within base latency + jitter bound.
  EXPECT_LE(sim_.Now(), Millis(1) + Millis(5));
  // And with 50 concurrent messages, at least one pair actually swapped.
  bool out_of_order = false;
  for (size_t i = 1; i < received_[1].size(); ++i) {
    if (std::get<Ack>(received_[1][i].payload).txn.seq <
        std::get<Ack>(received_[1][i - 1].payload).txn.seq) {
      out_of_order = true;
      break;
    }
  }
  EXPECT_TRUE(out_of_order);
}

TEST_F(NetworkTest, IdentityOverrideErasesTheEntry) {
  LinkOverride o;
  o.loss = 0.5;
  net_.SetLinkOverride(2, 3, o);
  EXPECT_TRUE(net_.has_link_overrides());
  ASSERT_NE(net_.FindLinkOverride(2, 3), nullptr);
  EXPECT_EQ(net_.FindLinkOverride(3, 2), nullptr);  // directional
  net_.SetLinkOverride(2, 3, LinkOverride{});
  EXPECT_FALSE(net_.has_link_overrides());
  EXPECT_EQ(net_.FindLinkOverride(2, 3), nullptr);
}

TEST_F(NetworkTest, ClearLinkOverridesLeavesOneWayCutsAlone) {
  LinkOverride o;
  o.dup_probability = 0.3;
  net_.SetLinkOverride(0, 1, o);
  net_.SetLinkOverride(1, 2, o);
  net_.SetLinkUpOneWay(0, 3, false);
  net_.ClearLinkOverrides();
  EXPECT_FALSE(net_.has_link_overrides());
  // The one-way severed direction is separate state and survives.
  net_.Send(0, 3, Ack{TxnId{0, 1}});
  sim_.RunToQuiescence();
  EXPECT_TRUE(received_[3].empty());
  net_.SetLinkUpOneWay(0, 3, true);
  net_.Send(0, 3, Ack{TxnId{0, 2}});
  sim_.RunToQuiescence();
  EXPECT_EQ(received_[3].size(), 1u);
}

TEST(LatencyModelTest, FixedIsConstant) {
  LatencyConfig cfg;
  cfg.distribution = LatencyDistribution::kFixed;
  cfg.mean = Millis(3);
  cfg.min = 0;
  cfg.per_kb = 0;
  LatencyModel model(cfg, Rng(1));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(model.SampleDelay(0, 1, 100), Millis(3));
  }
}

TEST(LatencyModelTest, UniformStaysInRange) {
  LatencyConfig cfg;
  cfg.distribution = LatencyDistribution::kUniform;
  cfg.mean = Millis(2);
  cfg.min = 0;
  cfg.per_kb = 0;
  LatencyModel model(cfg, Rng(2));
  for (int i = 0; i < 1000; ++i) {
    SimTime d = model.SampleDelay(0, 1, 100);
    EXPECT_GE(d, Millis(1));
    EXPECT_LE(d, Millis(3));
  }
}

TEST(LatencyModelTest, MinimumFloorApplies) {
  LatencyConfig cfg;
  cfg.distribution = LatencyDistribution::kExponential;
  cfg.mean = Micros(10);
  cfg.min = Micros(200);
  cfg.per_kb = 0;
  LatencyModel model(cfg, Rng(3));
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(model.SampleDelay(0, 1, 64), Micros(200));
  }
}

TEST(LatencyModelTest, RegionsSplitLatency) {
  LatencyConfig cfg;
  cfg.distribution = LatencyDistribution::kFixed;
  cfg.mean = Millis(1);
  cfg.inter_region_mean = Millis(25);
  cfg.regions = {0, 0, 1, 1};
  cfg.min = 0;
  cfg.per_kb = 0;
  LatencyModel model(cfg, Rng(5));
  EXPECT_EQ(model.SampleDelay(0, 1, 64), Millis(1));   // intra region 0
  EXPECT_EQ(model.SampleDelay(2, 3, 64), Millis(1));   // intra region 1
  EXPECT_EQ(model.SampleDelay(1, 2, 64), Millis(25));  // cross region
  EXPECT_EQ(model.SampleDelay(3, 0, 64), Millis(25));
  // Unlisted sites (e.g. the name server) default to region 0.
  EXPECT_EQ(model.SampleDelay(0, kNameServerId, 64), Millis(1));
  EXPECT_EQ(model.SampleDelay(2, kNameServerId, 64), Millis(25));
}

TEST(LatencyModelTest, RegionsIgnoredWhenInterMeanUnset) {
  LatencyConfig cfg;
  cfg.distribution = LatencyDistribution::kFixed;
  cfg.mean = Millis(2);
  cfg.regions = {0, 1};
  cfg.min = 0;
  cfg.per_kb = 0;
  LatencyModel model(cfg, Rng(6));
  EXPECT_EQ(model.SampleDelay(0, 1, 64), Millis(2));
}

TEST(LatencyModelTest, SizeCostAddsPerKb) {
  LatencyConfig cfg;
  cfg.distribution = LatencyDistribution::kFixed;
  cfg.mean = Millis(1);
  cfg.min = 0;
  cfg.per_kb = Micros(100);
  LatencyModel model(cfg, Rng(4));
  EXPECT_EQ(model.SampleDelay(0, 1, 2048), Millis(1) + Micros(200));
}

TEST(MessageTest, KindMatchesPayload) {
  Payload p = PrepareRequest{};
  EXPECT_EQ(MessageKindOf(p), MessageKind::kPrepareRequest);
  p = RefreshReply{};
  EXPECT_EQ(MessageKindOf(p), MessageKind::kRefreshReply);
}

TEST(MessageTest, DescribeNamesTxn) {
  Message m;
  m.from = 1;
  m.to = 2;
  m.payload = Decision{TxnId{1, 9}, true};
  std::string d = m.Describe();
  EXPECT_NE(d.find("Decision"), std::string::npos);
  EXPECT_NE(d.find("T9@1"), std::string::npos);
}

TEST(MessageTest, PayloadSizeGrowsWithContent) {
  PrepareRequest small;
  PrepareRequest big;
  big.versions.resize(10);
  big.participants.resize(10);
  EXPECT_GT(PayloadSizeBytes(Payload{big}), PayloadSizeBytes(Payload{small}));
}

}  // namespace
}  // namespace rainbow
