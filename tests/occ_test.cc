// Optimistic concurrency control: engine unit tests plus end-to-end
// validation behaviour (lock-free execution, backward validation and
// commit-window locks at 2PC prepare).

#include <gtest/gtest.h>

#include "cc/occ_manager.h"
#include "core/system.h"
#include "verify/history.h"
#include "workload/workload.h"

namespace rainbow {
namespace {

TxnId T(uint64_t n) { return TxnId{0, n}; }
TxnTimestamp Ts(int64_t n) { return TxnTimestamp{n, 0}; }

TEST(OccManagerTest, ExecutionPhaseIsLockFree) {
  OccManager occ;
  int grants = 0;
  auto count = [&](const CcGrant& g) { grants += g.granted; };
  // Conflicting reads and writes all pass during execution.
  occ.RequestWrite(T(1), Ts(1), 7, count);
  occ.RequestWrite(T(2), Ts(2), 7, count);
  occ.RequestRead(T(3), Ts(3), 7, count);
  EXPECT_EQ(grants, 3);
  EXPECT_FALSE(occ.Tracks(T(1)));  // nothing recorded
}

TEST(OccManagerTest, CommitLocksConflict) {
  OccManager occ;
  EXPECT_TRUE(occ.TryCommitLock(T(1), 7, /*exclusive=*/true));
  // Another writer or reader must fail while T1 is in its window.
  EXPECT_FALSE(occ.TryCommitLock(T(2), 7, true));
  EXPECT_FALSE(occ.TryCommitLock(T(2), 7, false));
  EXPECT_EQ(occ.validation_conflicts(), 2u);
  // Unrelated item is fine.
  EXPECT_TRUE(occ.TryCommitLock(T(2), 8, true));
  occ.Finish(T(1), true);
  EXPECT_TRUE(occ.TryCommitLock(T(2), 7, true));
}

TEST(OccManagerTest, SharedCommitLocksCoexist) {
  OccManager occ;
  EXPECT_TRUE(occ.TryCommitLock(T(1), 7, false));
  EXPECT_TRUE(occ.TryCommitLock(T(2), 7, false));
  // A writer must fail against foreign readers...
  EXPECT_FALSE(occ.TryCommitLock(T(3), 7, true));
  // ...but a transaction may upgrade over its own shared lock once the
  // other reader is gone.
  occ.Finish(T(2), false);
  EXPECT_TRUE(occ.TryCommitLock(T(1), 7, true));
  occ.Finish(T(1), true);
  EXPECT_EQ(occ.num_commit_locks(), 0u);
}

TEST(OccManagerTest, FinishReleasesEverything) {
  OccManager occ;
  occ.TryCommitLock(T(1), 1, true);
  occ.TryCommitLock(T(1), 2, false);
  EXPECT_TRUE(occ.Tracks(T(1)));
  EXPECT_EQ(occ.num_commit_locks(), 2u);
  occ.Finish(T(1), false);
  EXPECT_FALSE(occ.Tracks(T(1)));
  EXPECT_EQ(occ.num_commit_locks(), 0u);
}

class OccSystemTest : public ::testing::Test {
 protected:
  static SystemConfig Config() {
    SystemConfig cfg;
    cfg.seed = 404;
    cfg.num_sites = 3;
    cfg.latency.distribution = LatencyDistribution::kFixed;
    cfg.latency.mean = Millis(1);
    cfg.record_history = true;
    cfg.protocols.cc = CcKind::kOptimistic;
    cfg.AddFullyReplicatedItems(10, 100);
    return cfg;
  }
};

TEST_F(OccSystemTest, UncontendedTransactionsCommit) {
  auto sys = RainbowSystem::Create(Config());
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;
  int committed = 0;
  for (int i = 0; i < 5; ++i) {
    TxnProgram p;
    p.ops = {Op::Read(static_cast<ItemId>(i)),
             Op::Increment(static_cast<ItemId>(i + 5), 1)};
    ASSERT_TRUE(s.Submit(static_cast<SiteId>(i % 3), p,
                         [&](const TxnOutcome& o) { committed += o.committed; })
                    .ok());
    s.RunFor(Millis(100));
  }
  EXPECT_EQ(committed, 5);
  EXPECT_TRUE(CheckConflictSerializable(s.history().transactions()).ok());
}

TEST_F(OccSystemTest, StaleReadFailsValidation) {
  auto sys = RainbowSystem::Create(Config());
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;

  // T-slow reads item 0 early, then does two more reads (slow), then
  // increments item 1. T-fast overwrites item 0 in the middle. T-slow's
  // validation of item 0 must fail at prepare.
  TxnOutcome slow, fast;
  bool slow_done = false, fast_done = false;
  TxnProgram slow_p;
  slow_p.ops = {Op::Read(0), Op::Read(2), Op::Read(3), Op::Increment(1, 5)};
  TxnProgram fast_p;
  fast_p.ops = {Op::Write(0, 999)};
  s.sim().At(Micros(10), [&] {
    ASSERT_TRUE(s.Submit(0, slow_p, [&](const TxnOutcome& o) {
                   slow = o;
                   slow_done = true;
                 }).ok());
  });
  s.sim().At(Millis(3), [&] {
    ASSERT_TRUE(s.Submit(1, fast_p, [&](const TxnOutcome& o) {
                   fast = o;
                   fast_done = true;
                 }).ok());
  });
  s.RunFor(Seconds(2));
  ASSERT_TRUE(slow_done && fast_done);
  EXPECT_TRUE(fast.committed) << fast.ToString();
  EXPECT_FALSE(slow.committed) << slow.ToString();
  EXPECT_EQ(slow.abort_cause, AbortCause::kAcp);  // NO vote at prepare
  EXPECT_NE(slow.abort_detail.find("validation_failed"), std::string::npos)
      << slow.abort_detail;
  // The failed transaction wrote nothing.
  EXPECT_EQ(s.LatestCommitted(1)->version, 0u);
  EXPECT_TRUE(CheckConflictSerializable(s.history().transactions()).ok());
}

TEST_F(OccSystemTest, NoBlockingDuringExecution) {
  // Under OCC the slow reader never delays the writer (no read locks):
  // the writer commits at full speed while the reader is still running.
  auto sys = RainbowSystem::Create(Config());
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;
  SimTime fast_finish = 0;
  TxnProgram slow_p;
  slow_p.ops = {Op::Read(0), Op::Read(2), Op::Read(3), Op::Read(4),
                Op::Read(5)};
  TxnProgram fast_p;
  fast_p.ops = {Op::Write(0, 1)};
  ASSERT_TRUE(s.Submit(0, slow_p, nullptr).ok());
  s.sim().At(Millis(2), [&] {
    ASSERT_TRUE(s.Submit(1, fast_p, [&](const TxnOutcome& o) {
                   fast_finish = o.finished_at;
                 }).ok());
  });
  s.RunFor(Seconds(1));
  ASSERT_GT(fast_finish, 0);
  // With 1ms hops the writer needs ~8-12ms; a 2PL reader holding item 0
  // would have stalled it until the reader finished (~14ms+).
  EXPECT_LT(fast_finish, Millis(14));
}

TEST_F(OccSystemTest, ContendedWorkloadStaysSerializable) {
  SystemConfig cfg = Config();
  cfg.latency.distribution = LatencyDistribution::kUniform;
  cfg.latency.mean = Millis(2);
  auto sys = RainbowSystem::Create(cfg);
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;
  WorkloadConfig wl;
  wl.seed = 405;
  wl.num_txns = 150;
  wl.mpl = 8;
  wl.read_fraction = 0.5;
  WorkloadGenerator wlg(&s, wl);
  bool done = false;
  wlg.Run([&] { done = true; });
  s.RunFor(Seconds(60));
  ASSERT_TRUE(done);
  s.RunFor(Seconds(2));
  EXPECT_TRUE(CheckConflictSerializable(s.history().transactions()).ok());
  EXPECT_TRUE(s.CheckReplicaConsistency(false).ok());
  EXPECT_GT(s.monitor().committed(), 30u);
  // Validation failures surface as ACP aborts (NO votes).
  EXPECT_GT(s.monitor().aborted(AbortCause::kAcp), 0u);
  for (SiteId id = 0; id < 3; ++id) {
    EXPECT_EQ(s.site(id)->active_coordinators(), 0u);
    EXPECT_EQ(s.site(id)->active_participants(), 0u);
  }
}

}  // namespace
}  // namespace rainbow
