// Property-style tests: seed-parameterized whole-system runs checking
// the invariants every correct configuration must uphold —
// conflict-serializability of the committed history, atomic visibility
// of writes, replica agreement, conservation of money in transfer
// workloads, message conservation, and full quiescence.

#include <gtest/gtest.h>

#include "core/system.h"
#include "fault/fault_injector.h"
#include "verify/checker.h"
#include "verify/history.h"
#include "workload/workload.h"

namespace rainbow {
namespace {

struct ProtoCase {
  RcpKind rcp;
  CcKind cc;
  DeadlockPolicy deadlock;
  const char* name;
};

const ProtoCase kProtoCases[] = {
    {RcpKind::kQuorumConsensus, CcKind::kTwoPhaseLocking,
     DeadlockPolicy::kWaitDie, "QC_2PL_waitdie"},
    {RcpKind::kQuorumConsensus, CcKind::kTwoPhaseLocking,
     DeadlockPolicy::kWoundWait, "QC_2PL_woundwait"},
    {RcpKind::kQuorumConsensus, CcKind::kTwoPhaseLocking,
     DeadlockPolicy::kLocalWfg, "QC_2PL_wfg"},
    {RcpKind::kQuorumConsensus, CcKind::kTwoPhaseLocking,
     DeadlockPolicy::kTimeoutOnly, "QC_2PL_timeout"},
    {RcpKind::kQuorumConsensus, CcKind::kTimestampOrdering,
     DeadlockPolicy::kWaitDie, "QC_TSO"},
    {RcpKind::kQuorumConsensus, CcKind::kMultiversionTso,
     DeadlockPolicy::kWaitDie, "QC_MVTO"},
    {RcpKind::kRowa, CcKind::kTwoPhaseLocking, DeadlockPolicy::kWaitDie,
     "ROWA_2PL"},
    {RcpKind::kRowa, CcKind::kTimestampOrdering, DeadlockPolicy::kWaitDie,
     "ROWA_TSO"},
    {RcpKind::kPrimaryCopy, CcKind::kTwoPhaseLocking,
     DeadlockPolicy::kWoundWait, "PRIMARY_2PL"},
    {RcpKind::kPrimaryCopy, CcKind::kTimestampOrdering,
     DeadlockPolicy::kWaitDie, "PRIMARY_TSO"},
    {RcpKind::kQuorumConsensus, CcKind::kOptimistic,
     DeadlockPolicy::kWaitDie, "QC_OCC"},
    {RcpKind::kRowa, CcKind::kOptimistic, DeadlockPolicy::kWaitDie,
     "ROWA_OCC"},
};

class SerializabilityProperty
    : public ::testing::TestWithParam<std::tuple<ProtoCase, uint64_t>> {};

TEST_P(SerializabilityProperty, CommittedHistoryIsSerializable) {
  const auto& [proto, seed] = GetParam();
  SystemConfig cfg;
  cfg.seed = seed;
  cfg.num_sites = 4;
  cfg.record_history = true;
  cfg.protocols.rcp = proto.rcp;
  cfg.protocols.cc = proto.cc;
  cfg.protocols.deadlock = proto.deadlock;
  cfg.AddUniformItems(12, 50, 3);  // small database: heavy conflicts

  auto sys = RainbowSystem::Create(cfg);
  ASSERT_TRUE(sys.ok()) << sys.status();
  RainbowSystem& s = **sys;

  WorkloadConfig wl;
  wl.seed = seed * 31 + 7;
  wl.num_txns = 120;
  wl.mpl = 8;
  wl.read_fraction = 0.5;
  wl.ops_min = 2;
  wl.ops_max = 5;
  WorkloadGenerator wlg(&s, wl);
  bool done = false;
  wlg.Run([&] { done = true; });
  s.RunFor(Seconds(120));
  ASSERT_TRUE(done) << "workload did not drain";
  s.RunFor(Seconds(2));  // let closers/acks settle

  Status ser = CheckConflictSerializable(s.history().transactions());
  EXPECT_TRUE(ser.ok()) << proto.name << " seed " << seed << ": "
                        << ser.ToString() << "\n"
                        << RenderHistory(s.history().transactions());
  // Replica agreement: no two copies disagree at the same version.
  EXPECT_TRUE(s.CheckReplicaConsistency(false).ok());
  // Quiescence: no transaction state left anywhere.
  for (SiteId id = 0; id < 4; ++id) {
    EXPECT_EQ(s.site(id)->active_coordinators(), 0u) << proto.name;
    EXPECT_EQ(s.site(id)->active_participants(), 0u) << proto.name;
  }
  // Message conservation.
  const NetworkStats& net = s.net().stats();
  EXPECT_EQ(net.delivered + net.total_dropped(), net.sent);
  // Sanity: the run actually did something. (Commit rates are low by
  // design here — a 12-item database at MPL 8 is a conflict furnace.)
  EXPECT_GT(s.monitor().committed(), 10u) << proto.name << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    ProtocolMatrix, SerializabilityProperty,
    ::testing::Combine(::testing::ValuesIn(kProtoCases),
                       ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<SerializabilityProperty::ParamType>&
           info) {
      return std::string(std::get<0>(info.param).name) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// --- money conservation under concurrent transfers ---

class TransferProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TransferProperty, TotalBalanceConserved) {
  uint64_t seed = GetParam();
  constexpr int kAccounts = 10;
  constexpr Value kInitial = 1000;

  SystemConfig cfg;
  cfg.seed = seed;
  cfg.num_sites = 3;
  cfg.record_history = true;
  cfg.AddFullyReplicatedItems(kAccounts, kInitial);

  auto sys = RainbowSystem::Create(cfg);
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;

  // Fire 60 concurrent transfers: move a random amount between two
  // random accounts. INCREMENT ops make them read-modify-write.
  Rng rng(seed * 7919);
  int launched = 0;
  for (int i = 0; i < 60; ++i) {
    ItemId from = static_cast<ItemId>(rng.NextUint(kAccounts));
    ItemId to = static_cast<ItemId>(rng.NextUint(kAccounts));
    if (from == to) to = (to + 1) % kAccounts;
    Value amount = rng.NextInt(1, 50);
    TxnProgram p;
    p.ops = {Op::Increment(from, -amount), Op::Increment(to, amount)};
    p.label = "transfer";
    SiteId home = static_cast<SiteId>(rng.NextUint(3));
    s.sim().At(Micros(static_cast<SimTime>(rng.NextUint(20000))), [&s, p, home] {
      ASSERT_TRUE(s.Submit(home, p, nullptr).ok());
    });
    ++launched;
  }
  s.RunFor(Seconds(60));
  ASSERT_EQ(s.monitor().committed() + s.monitor().aborted_total(),
            static_cast<uint64_t>(launched));

  // The sum over latest committed values must be exactly conserved.
  Value total = 0;
  for (ItemId i = 0; i < kAccounts; ++i) {
    auto latest = s.LatestCommitted(i);
    ASSERT_TRUE(latest.ok());
    total += latest->value;
  }
  EXPECT_EQ(total, kAccounts * kInitial);
  EXPECT_TRUE(CheckConflictSerializable(s.history().transactions()).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransferProperty,
                         ::testing::Range<uint64_t>(1, 9));

// --- atomicity & convergence under random crash/recovery ---

class FaultProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FaultProperty, SerializableAndConsistentUnderRandomFaults) {
  uint64_t seed = GetParam();
  SystemConfig cfg;
  cfg.seed = seed;
  cfg.num_sites = 5;
  cfg.record_history = true;
  cfg.AddUniformItems(30, 100, 5);  // full replication, quorum 3

  auto sys = RainbowSystem::Create(cfg);
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;

  FaultInjector inject(&s);
  inject.EnableRandomFaults(Millis(400), Millis(120), Seconds(2), seed * 13);

  WorkloadConfig wl;
  wl.seed = seed * 17;
  wl.num_txns = 200;
  wl.mpl = 6;
  wl.read_fraction = 0.5;
  WorkloadGenerator wlg(&s, wl);
  bool done = false;
  wlg.Run([&] { done = true; });
  s.RunFor(Seconds(6));
  // Workloads may stall if homes crash at the wrong moment; either way
  // the committed prefix must be correct. Give recovery time to settle.
  s.RunFor(Seconds(4));

  Status ser = CheckConflictSerializable(s.history().transactions());
  EXPECT_TRUE(ser.ok()) << "seed " << seed << ": " << ser.ToString();
  EXPECT_TRUE(s.CheckReplicaConsistency(false).ok())
      << s.CheckReplicaConsistency(false).ToString();
  EXPECT_GT(s.monitor().committed(), 5u) << "seed " << seed;
  const NetworkStats& net = s.net().stats();
  EXPECT_EQ(net.delivered + net.total_dropped(), net.sent);
  (void)done;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultProperty,
                         ::testing::Range<uint64_t>(1, 7));

// --- correctness under message loss ---

class LossProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LossProperty, SerializableUnderMessageLoss) {
  uint64_t seed = GetParam();
  SystemConfig cfg;
  cfg.seed = seed;
  cfg.num_sites = 4;
  cfg.record_history = true;
  cfg.message_loss = 0.03;  // 3% of messages silently vanish
  cfg.verify_codec = true;  // and everything rides the wire codec
  cfg.AddUniformItems(40, 100, 3);

  auto sys = RainbowSystem::Create(cfg);
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;

  WorkloadConfig wl;
  wl.seed = seed * 41;
  wl.num_txns = 150;
  wl.mpl = 5;
  WorkloadGenerator wlg(&s, wl);
  bool done = false;
  wlg.Run([&] { done = true; });
  s.RunFor(Seconds(30));
  EXPECT_TRUE(done) << "workload did not drain under loss";
  s.RunFor(Seconds(3));

  Status ser = CheckConflictSerializable(s.history().transactions());
  EXPECT_TRUE(ser.ok()) << "seed " << seed << ": " << ser.ToString();
  EXPECT_TRUE(s.CheckReplicaConsistency(false).ok())
      << s.CheckReplicaConsistency(false).ToString();
  // Losses really happened and the protocols survived them.
  EXPECT_GT(s.net().stats().dropped[static_cast<size_t>(
                DropCause::kRandomLoss)],
            0u);
  EXPECT_EQ(s.net().stats().codec_failures, 0u);
  EXPECT_GT(s.monitor().committed(), 25u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossProperty,
                         ::testing::Range<uint64_t>(1, 6));

// --- 3PC under random faults ---

class ThreePcFaultProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ThreePcFaultProperty, AtomicUnderRandomCrashes) {
  uint64_t seed = GetParam();
  SystemConfig cfg;
  cfg.seed = seed;
  cfg.num_sites = 4;
  cfg.record_history = true;
  cfg.trace_enabled = true;
  cfg.trace_detail = TraceDetail::kProtocol;
  cfg.protocols.acp = AcpKind::kThreePhaseCommit;
  cfg.AddUniformItems(20, 100, 4);

  auto sys = RainbowSystem::Create(cfg);
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;

  FaultInjector inject(&s);
  inject.EnableRandomFaults(Millis(500), Millis(150), Seconds(2), seed * 29);

  WorkloadConfig wl;
  wl.seed = seed * 37;
  wl.num_txns = 120;
  wl.mpl = 5;
  WorkloadGenerator wlg(&s, wl);
  wlg.Run();
  s.RunFor(Seconds(10));

  // The coordinator-side history check cannot classify transactions the
  // 3PC termination protocol committed after their coordinator crashed
  // (no commit ever reaches the history recorder); the trace-based
  // checker sees participant decisions and handles them.
  CheckReport report = s.VerifyHistory();
  EXPECT_TRUE(report.ok()) << "seed " << seed << ":\n" << report.Render();
  EXPECT_TRUE(s.CheckReplicaConsistency(false).ok());
  EXPECT_GT(s.monitor().committed(), 3u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreePcFaultProperty,
                         ::testing::Range<uint64_t>(1, 5));

}  // namespace
}  // namespace rainbow
