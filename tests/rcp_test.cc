#include <gtest/gtest.h>

#include "rcp/rcp_policy.h"

namespace rainbow {
namespace {

ReplicaView View(std::vector<SiteId> copies, std::vector<int> votes, int r,
                 int w) {
  ReplicaView v;
  v.copies = std::move(copies);
  v.votes = std::move(votes);
  v.read_quorum = r;
  v.write_quorum = w;
  return v;
}

ReplicaView Majority3() { return View({0, 1, 2}, {1, 1, 1}, 2, 2); }

TEST(RcpRowaTest, ReadPicksOneCopyPreferringLocal) {
  RcpPlanner planner(RcpKind::kRowa, false);
  auto plan = planner.PlanRead(Majority3(), /*self=*/1, {});
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->targets.size(), 1u);
  EXPECT_EQ(plan->targets[0], 1u);
  EXPECT_TRUE(plan->require_all);
}

TEST(RcpRowaTest, ReadAvoidsSuspectedSites) {
  RcpPlanner planner(RcpKind::kRowa, false);
  auto plan = planner.PlanRead(Majority3(), /*self=*/5, {0});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->targets[0], 1u);  // lowest unsuspected
}

TEST(RcpRowaTest, WriteTargetsAllCopiesEvenSuspected) {
  RcpPlanner planner(RcpKind::kRowa, false);
  auto plan = planner.PlanWrite(Majority3(), 0, {2});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->targets.size(), 3u);
  EXPECT_TRUE(plan->require_all);
}

TEST(RcpRowaAvailableTest, WriteSkipsSuspected) {
  RcpPlanner planner(RcpKind::kRowaAvailable, false);
  auto plan = planner.PlanWrite(Majority3(), 0, {2});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->targets.size(), 2u);
  EXPECT_TRUE(plan->require_all);
}

TEST(RcpRowaAvailableTest, AllSuspectedIsUnavailable) {
  RcpPlanner planner(RcpKind::kRowaAvailable, false);
  auto plan = planner.PlanWrite(Majority3(), 5, {0, 1, 2});
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kUnavailable);
  auto read = planner.PlanRead(Majority3(), 5, {0, 1, 2});
  EXPECT_FALSE(read.ok());
}

TEST(RcpQuorumTest, MinimalSubsetReachesQuorum) {
  RcpPlanner planner(RcpKind::kQuorumConsensus, false);
  auto plan = planner.PlanRead(Majority3(), /*self=*/2, {});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->needed_votes, 2);
  ASSERT_EQ(plan->targets.size(), 2u);
  EXPECT_EQ(plan->targets[0], 2u);  // self first
  EXPECT_EQ(plan->targets[1], 0u);  // then lowest id
  EXPECT_FALSE(plan->require_all);
}

TEST(RcpQuorumTest, WeightedVotesShrinkTargetSet) {
  // Site 0 has 3 of 5 votes; a write quorum of 3 needs only site 0.
  ReplicaView v = View({0, 1, 2}, {3, 1, 1}, 3, 3);
  RcpPlanner planner(RcpKind::kQuorumConsensus, false);
  auto plan = planner.PlanWrite(v, /*self=*/1, {});
  ASSERT_TRUE(plan.ok());
  // Preference: self (1 vote) then site 0 (3 votes) = 4 >= 3.
  EXPECT_EQ(plan->targets.size(), 2u);
}

TEST(RcpQuorumTest, SuspectedSitesUsedOnlyAsLastResort) {
  RcpPlanner planner(RcpKind::kQuorumConsensus, false);
  auto plan = planner.PlanRead(Majority3(), /*self=*/5, {1});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->targets, (std::vector<SiteId>{0, 2}));
}

TEST(RcpQuorumTest, FallsBackToSuspectedWhenNecessary) {
  RcpPlanner planner(RcpKind::kQuorumConsensus, false);
  auto plan = planner.PlanWrite(Majority3(), /*self=*/5, {0, 1});
  ASSERT_TRUE(plan.ok());
  // Needs 2 votes but only one unsuspected copy: one suspected site is
  // included as a gamble (suspicion is only a hint).
  EXPECT_EQ(plan->targets.size(), 2u);
  EXPECT_EQ(plan->targets[0], 2u);
}

TEST(RcpQuorumTest, BroadcastContactsEveryCopy) {
  RcpPlanner planner(RcpKind::kQuorumConsensus, true);
  auto plan = planner.PlanRead(Majority3(), 0, {});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->targets.size(), 3u);
  EXPECT_EQ(plan->needed_votes, 2);
}

TEST(RcpQuorumTest, EmptyViewIsInvalid) {
  RcpPlanner planner(RcpKind::kQuorumConsensus, false);
  ReplicaView empty;
  EXPECT_FALSE(planner.PlanRead(empty, 0, {}).ok());
  EXPECT_FALSE(planner.PlanWrite(empty, 0, {}).ok());
}

TEST(RcpQuorumTest, ReadWriteQuorumsIntersect) {
  // For every valid schema, any read-quorum subset and write-quorum
  // subset must share a site. Spot-check with the planner's subsets.
  ReplicaView v = View({0, 1, 2, 3, 4}, {1, 1, 1, 1, 1}, 3, 3);
  RcpPlanner planner(RcpKind::kQuorumConsensus, false);
  auto r = planner.PlanRead(v, 0, {});
  auto w = planner.PlanWrite(v, 4, {});
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(w.ok());
  int shared = 0;
  for (SiteId a : r->targets) {
    for (SiteId b : w->targets) shared += a == b;
  }
  EXPECT_GT(shared, 0);
}

TEST(RcpPrimaryCopyTest, ReadsGoToPrimaryOnly) {
  RcpPlanner planner(RcpKind::kPrimaryCopy, false);
  ReplicaView v = View({4, 1, 2}, {1, 1, 1}, 2, 2);  // primary = site 4
  auto plan = planner.PlanRead(v, /*self=*/1, {});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->targets, (std::vector<SiteId>{4}));
  EXPECT_EQ(plan->cc_site, 4u);
  EXPECT_TRUE(plan->require_all);
}

TEST(RcpPrimaryCopyTest, WritesTouchAllCopiesCcAtPrimary) {
  RcpPlanner planner(RcpKind::kPrimaryCopy, false);
  ReplicaView v = View({4, 1, 2}, {1, 1, 1}, 2, 2);
  auto plan = planner.PlanWrite(v, /*self=*/2, {1});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->targets.size(), 3u);  // suspicion does not shrink it
  EXPECT_EQ(plan->cc_site, 4u);
  EXPECT_TRUE(plan->require_all);
}

TEST(ReplicaViewTest, VoteAccessors) {
  ReplicaView v = View({3, 5}, {2, 1}, 2, 2);
  EXPECT_EQ(v.total_votes(), 3);
  EXPECT_EQ(v.VoteOf(3), 2);
  EXPECT_EQ(v.VoteOf(5), 1);
  EXPECT_EQ(v.VoteOf(9), 0);
}

}  // namespace
}  // namespace rainbow
