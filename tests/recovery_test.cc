#include <gtest/gtest.h>

#include <algorithm>

#include "core/system.h"
#include "fault/fault_injector.h"
#include "workload/workload.h"

namespace rainbow {
namespace {

/// Fixed latency makes protocol phase timing predictable enough to place
/// crashes inside specific windows.
SystemConfig FixedLatencySystem(uint32_t sites, AcpKind acp,
                                RcpKind rcp = RcpKind::kQuorumConsensus) {
  SystemConfig cfg;
  cfg.seed = 99;
  cfg.num_sites = sites;
  cfg.latency.distribution = LatencyDistribution::kFixed;
  cfg.latency.mean = Millis(1);
  cfg.latency.min = Micros(100);
  cfg.latency.per_kb = 0;
  cfg.protocols.acp = acp;
  cfg.protocols.rcp = rcp;
  cfg.AddFullyReplicatedItems(10, 100);
  return cfg;
}

/// Asserts every copy of every item carries the same (version, value) —
/// full convergence, which holds in these tests after recovery+refresh.
void ExpectConverged(RainbowSystem& sys) {
  EXPECT_TRUE(sys.CheckReplicaConsistency(true).ok())
      << sys.CheckReplicaConsistency(true).ToString();
}

TEST(RecoveryTest, SubmitToCrashedSiteFailsFast) {
  auto sys = RainbowSystem::Create(FixedLatencySystem(3, AcpKind::kTwoPhaseCommit));
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;
  s.CrashSite(0);
  TxnOutcome outcome;
  bool done = false;
  ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Read(0)}, ""},
                       [&](const TxnOutcome& o) {
                         outcome = o;
                         done = true;
                       })
                  .ok());
  s.RunFor(Millis(10));
  ASSERT_TRUE(done);
  EXPECT_FALSE(outcome.committed);
  EXPECT_EQ(outcome.abort_cause, AbortCause::kSiteFailure);
}

TEST(RecoveryTest, HomeCrashMidFlightIsAtomic) {
  // Sweep the crash over the whole transaction lifetime: whatever the
  // instant, after recovery every replica must agree (all version 0 or
  // all version 1 with value 777).
  for (SimTime crash_at = Millis(1); crash_at <= Millis(12);
       crash_at += Micros(500)) {
    auto sys =
        RainbowSystem::Create(FixedLatencySystem(3, AcpKind::kTwoPhaseCommit));
    ASSERT_TRUE(sys.ok());
    RainbowSystem& s = **sys;
    FaultInjector inject(&s);
    inject.Schedule(FaultEvent::Crash(crash_at, 0));
    inject.Schedule(FaultEvent::Recover(Millis(700), 0));

    ASSERT_TRUE(
        s.Submit(0, TxnProgram{{Op::Write(3, 777)}, ""}, nullptr).ok());
    s.RunFor(Seconds(3));

    // The write quorum was {site 0, site 1} (preferred subset). Either
    // the transaction committed — both quorum copies at version 1 with
    // the new value — or it aborted and no copy changed. Site 2 may
    // legitimately stay at version 0 under QC.
    Version v0 = s.site(0)->store().Get(3)->version;
    Version v1 = s.site(1)->store().Get(3)->version;
    EXPECT_EQ(v0, v1) << "crash_at=" << crash_at
                      << ": quorum copies diverged";
    if (v0 == 1) {
      EXPECT_EQ(s.site(0)->store().Get(3)->value, 777);
      EXPECT_EQ(s.site(1)->store().Get(3)->value, 777);
    } else {
      EXPECT_EQ(s.site(0)->store().Get(3)->value, 100);
    }
    EXPECT_TRUE(s.CheckReplicaConsistency(false).ok());
  }
}

TEST(RecoveryTest, ParticipantCrashMidFlightIsAtomic) {
  for (SimTime crash_at = Millis(1); crash_at <= Millis(12);
       crash_at += Micros(500)) {
    auto sys =
        RainbowSystem::Create(FixedLatencySystem(3, AcpKind::kTwoPhaseCommit));
    ASSERT_TRUE(sys.ok());
    RainbowSystem& s = **sys;
    FaultInjector inject(&s);
    inject.Schedule(FaultEvent::Crash(crash_at, 2));
    inject.Schedule(FaultEvent::Recover(Millis(700), 2));

    bool committed = false;
    ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Write(3, 555)}, ""},
                         [&](const TxnOutcome& o) { committed = o.committed; })
                    .ok());
    s.RunFor(Seconds(3));

    // Atomicity across the surviving + recovered replicas: a committed
    // transaction's write must be at every copy (refresh heals the
    // crashed one); an aborted one must be nowhere.
    for (SiteId id = 0; id < 3; ++id) {
      auto copy = s.site(id)->store().Get(3);
      ASSERT_TRUE(copy.ok());
      if (committed) {
        EXPECT_EQ(copy->value, 555) << "crash_at=" << crash_at;
        EXPECT_EQ(copy->version, 1u);
      } else {
        EXPECT_EQ(copy->version, 0u) << "crash_at=" << crash_at;
      }
    }
  }
}

TEST(RecoveryTest, CoordinatorCrashAfterCommitResendsDecision) {
  auto sys =
      RainbowSystem::Create(FixedLatencySystem(3, AcpKind::kTwoPhaseCommit));
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;

  bool committed = false;
  ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Write(1, 42)}, ""},
                       [&](const TxnOutcome& o) {
                         committed = o.committed;
                         // Crash the home the instant the commit is
                         // reported: decision logged, acks not yet in.
                         s.CrashSite(0);
                       })
                  .ok());
  s.RunFor(Millis(300));
  EXPECT_TRUE(committed);
  s.RecoverSite(0);
  s.RunFor(Millis(500));
  // The recovered coordinator must re-propagate the commit to its write
  // quorum {0, 1} and redo its own copy.
  for (SiteId id = 0; id < 2; ++id) {
    auto copy = s.site(id)->store().Get(1);
    ASSERT_TRUE(copy.ok());
    EXPECT_EQ(copy->value, 42) << "site " << id;
    EXPECT_EQ(copy->version, 1u) << "site " << id;
  }
  auto latest = s.LatestCommitted(1);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->value, 42);
  EXPECT_TRUE(s.CheckReplicaConsistency(false).ok());
}

TEST(RecoveryTest, PreparedParticipantBlocksUntilCoordinatorReturns) {
  // 2PC's defining weakness: crash the coordinator between prepare and
  // decision; the prepared participants stay blocked (holding locks)
  // until it recovers and answers with presumed abort.
  auto sys =
      RainbowSystem::Create(FixedLatencySystem(3, AcpKind::kTwoPhaseCommit));
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;
  FaultInjector inject(&s);
  // Timeline with 1ms fixed latency: lookup ~2ms, prewrite ~4ms,
  // prepare sent ~4ms, votes back ~6ms. Crash at 5.5ms: after votes
  // were sent by participants, before the decision went out.
  inject.Schedule(FaultEvent::Crash(Micros(5500), 0));
  inject.Schedule(FaultEvent::Recover(Millis(400), 0));

  ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Write(2, 9)}, ""}, nullptr).ok());
  s.RunFor(Millis(200));
  // While the coordinator is down, at least one remote participant is
  // still prepared (in doubt), holding its write lock.
  size_t prepared_sites = 0;
  for (SiteId id = 1; id < 3; ++id) {
    prepared_sites += s.site(id)->active_participants() > 0;
  }
  EXPECT_GT(prepared_sites, 0u) << "participants resolved without coordinator";

  s.RunFor(Seconds(2));
  // After recovery: presumed abort. No copy changed.
  for (SiteId id = 0; id < 3; ++id) {
    EXPECT_EQ(s.site(id)->store().Get(2)->version, 0u);
    EXPECT_EQ(s.site(id)->active_participants(), 0u);
  }
  // Blocking was measured and spans (roughly) the outage.
  EXPECT_GT(s.monitor().blocked_times().max(), Millis(300));
}

TEST(RecoveryTest, ThreePcTerminatesWithoutCoordinator) {
  auto sys =
      RainbowSystem::Create(FixedLatencySystem(3, AcpKind::kThreePhaseCommit));
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;
  FaultInjector inject(&s);
  inject.Schedule(FaultEvent::Crash(Micros(5500), 0));
  // Coordinator never recovers within the run.

  ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Write(2, 9)}, ""}, nullptr).ok());
  s.RunFor(Seconds(2));

  // The surviving participants resolved the transaction on their own.
  for (SiteId id = 1; id < 3; ++id) {
    EXPECT_EQ(s.site(id)->active_participants(), 0u) << "site " << id;
  }
  // And they agree with each other.
  auto c1 = s.site(1)->store().Get(2);
  auto c2 = s.site(2)->store().Get(2);
  EXPECT_EQ(c1->version, c2->version);
  EXPECT_EQ(c1->value, c2->value);
  // Blocking is bounded by the termination timeout, far below the 2PC
  // blocking in the test above.
  EXPECT_LT(s.monitor().blocked_times().max(), Millis(600));
}

TEST(RecoveryTest, ThreePcDivergesUnderPartitionTheKnownLimitation) {
  // 3PC's correctness assumes crash-stop failures WITHOUT network
  // partitions. This test engineers the textbook counterexample and
  // asserts the divergence happens — documenting the limitation (and
  // giving lab exercise #8 its failing baseline):
  //  * ROWA write => participants {0, 1, 2} (home 0 coordinates);
  //  * the link 0-1 drops just before PreCommit, so participant 1 stays
  //    prepared while participant 2 reaches pre-committed;
  //  * the coordinator crashes; sites 1 and 2 are partitioned apart;
  //  * each runs the termination protocol alone: 1 (all-prepared) decides
  //    ABORT, 2 (pre-committed) decides COMMIT.
  SystemConfig cfg =
      FixedLatencySystem(3, AcpKind::kThreePhaseCommit, RcpKind::kRowa);
  cfg.protocols.recovery_refresh = false;  // keep the divergence visible
  auto sys = RainbowSystem::Create(cfg);
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;
  FaultInjector inject(&s);
  // Timeline (1ms fixed latency): lookup ~2ms, prewrite ~4ms, prepare
  // ~5ms, votes ~6ms, PreCommit leaves the coordinator at ~6ms.
  // Votes arrive at the coordinator at ~6.0ms and PreCommit departs in
  // the same instant; cutting the link at 6.3ms lets the votes through
  // but drops the PreCommit in flight to site 1 (connectivity is
  // re-checked at delivery time, ~7.0ms).
  inject.Schedule(FaultEvent::LinkDown(Micros(6300), 0, 1));
  inject.Schedule(FaultEvent::Crash(Micros(7500), 0));
  inject.Schedule(FaultEvent::Partition(Micros(7600), {{1}, {2}}));

  ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Write(3, 666)}, ""}, nullptr).ok());
  s.RunFor(Seconds(2));

  Version v1 = s.site(1)->store().Get(3)->version;
  Version v2 = s.site(2)->store().Get(3)->version;
  // The split brain: one participant aborted, the other committed.
  EXPECT_EQ(v1, 0u) << "site 1 should have terminated with ABORT";
  EXPECT_EQ(v2, 1u) << "site 2 should have terminated with COMMIT";
  EXPECT_EQ(s.site(2)->store().Get(3)->value, 666);
  // Both sides consider the transaction fully resolved.
  EXPECT_EQ(s.site(1)->active_participants(), 0u);
  EXPECT_EQ(s.site(2)->active_participants(), 0u);
}

TEST(RecoveryTest, OrphanedParticipantsCleanUp) {
  auto sys =
      RainbowSystem::Create(FixedLatencySystem(3, AcpKind::kTwoPhaseCommit));
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;
  FaultInjector inject(&s);
  // Crash the home right after its prewrites went out (~3ms), before
  // prepare: remote participants hold locks for an orphan.
  inject.Schedule(FaultEvent::Crash(Micros(3200), 0));

  ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Write(4, 1)}, ""}, nullptr).ok());
  s.RunFor(Seconds(5));

  EXPECT_GT(s.monitor().orphans(), 0u);
  for (SiteId id = 1; id < 3; ++id) {
    EXPECT_EQ(s.site(id)->active_participants(), 0u);
    EXPECT_EQ(s.site(id)->store().Get(4)->version, 0u);
  }
  // The released locks let later transactions commit without site 0 —
  // after one attempt primes the failure detector (the first write may
  // pick the dead site for its quorum and time out).
  bool committed = false;
  for (int attempt = 0; attempt < 2 && !committed; ++attempt) {
    ASSERT_TRUE(s.Submit(1, TxnProgram{{Op::Write(4, 2)}, ""},
                         [&](const TxnOutcome& o) { committed = o.committed; })
                    .ok());
    s.RunFor(Seconds(1));
  }
  EXPECT_TRUE(committed);
}

TEST(RecoveryTest, RecoveryRefreshCatchesUpMissedWrites) {
  auto sys =
      RainbowSystem::Create(FixedLatencySystem(3, AcpKind::kTwoPhaseCommit));
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;
  s.CrashSite(2);
  // Commit writes while site 2 is down (quorum 2 of 3 suffices).
  for (int i = 0; i < 5; ++i) {
    bool committed = false;
    ASSERT_TRUE(
        s.Submit(0, TxnProgram{{Op::Increment(static_cast<ItemId>(i), 10)}, ""},
                 [&](const TxnOutcome& o) { committed = o.committed; })
            .ok());
    s.RunFor(Millis(100));
    ASSERT_TRUE(committed) << "write " << i << " failed with a site down";
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(s.site(2)->store().Get(static_cast<ItemId>(i))->version, 0u);
  }
  s.RecoverSite(2);
  s.RunFor(Millis(200));
  for (int i = 0; i < 5; ++i) {
    auto copy = s.site(2)->store().Get(static_cast<ItemId>(i));
    EXPECT_EQ(copy->version, 1u) << "item " << i << " not refreshed";
    EXPECT_EQ(copy->value, 110);
  }
  ExpectConverged(s);
}

TEST(RecoveryTest, RowaWritesBlockWhileCopyDownThenResume) {
  auto sys = RainbowSystem::Create(
      FixedLatencySystem(3, AcpKind::kTwoPhaseCommit, RcpKind::kRowa));
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;
  s.CrashSite(2);

  bool write_committed = true;
  ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Write(0, 5)}, ""},
                       [&](const TxnOutcome& o) {
                         write_committed = o.committed;
                       })
                  .ok());
  // Reads still work (read-one).
  bool read_committed = false;
  ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Read(1)}, ""},
                       [&](const TxnOutcome& o) {
                         read_committed = o.committed;
                       })
                  .ok());
  s.RunFor(Seconds(1));
  EXPECT_FALSE(write_committed) << "ROWA write must fail with a copy down";
  EXPECT_TRUE(read_committed);

  s.RecoverSite(2);
  s.RunFor(Millis(100));
  bool committed = false;
  ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Write(0, 6)}, ""},
                       [&](const TxnOutcome& o) { committed = o.committed; })
                  .ok());
  s.RunFor(Seconds(1));
  EXPECT_TRUE(committed);
  ExpectConverged(s);
}

TEST(RecoveryTest, MvtoRecoverySeedsVersionChainFromStore) {
  SystemConfig cfg = FixedLatencySystem(3, AcpKind::kTwoPhaseCommit);
  cfg.protocols.cc = CcKind::kMultiversionTso;
  auto sys = RainbowSystem::Create(cfg);
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;

  // Commit a write, crash+recover a replica, then read THROUGH the
  // recovered site's fresh MVTO engine: it must serve the redone value
  // at the correct version, not a stale initial.
  bool committed = false;
  ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Write(2, 333)}, ""},
                       [&](const TxnOutcome& o) { committed = o.committed; })
                  .ok());
  s.RunFor(Millis(100));
  ASSERT_TRUE(committed);
  s.CrashSite(1);
  s.RunFor(Millis(50));
  s.RecoverSite(1);
  s.RunFor(Millis(100));

  TxnOutcome out;
  bool done = false;
  ASSERT_TRUE(s.Submit(1, TxnProgram{{Op::Read(2)}, ""},
                       [&](const TxnOutcome& o) {
                         out = o;
                         done = true;
                       })
                  .ok());
  s.RunFor(Millis(200));
  ASSERT_TRUE(done);
  ASSERT_TRUE(out.committed);
  ASSERT_EQ(out.reads.size(), 1u);
  EXPECT_EQ(out.reads[0], 333);
}

TEST(RecoveryTest, PrimaryCopyUnavailableWhilePrimaryDown) {
  auto sys = RainbowSystem::Create(FixedLatencySystem(
      3, AcpKind::kTwoPhaseCommit, RcpKind::kPrimaryCopy));
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;
  // Items are fully replicated with primary = first copy. Item 0's
  // primary is site 0 (AddUniformItems places copies round-robin from
  // the item index).
  s.CrashSite(0);
  bool committed = true;
  ASSERT_TRUE(s.Submit(1, TxnProgram{{Op::Read(0)}, ""},
                       [&](const TxnOutcome& o) { committed = o.committed; })
                  .ok());
  s.RunFor(Seconds(1));
  EXPECT_FALSE(committed) << "reads must fail while the primary is down";

  s.RecoverSite(0);
  s.RunFor(Millis(100));
  bool after = false;
  ASSERT_TRUE(s.Submit(1, TxnProgram{{Op::Increment(0, 5)}, ""},
                       [&](const TxnOutcome& o) { after = o.committed; })
                  .ok());
  s.RunFor(Seconds(1));
  EXPECT_TRUE(after);
  // The eager write reached every copy.
  for (SiteId id = 0; id < 3; ++id) {
    EXPECT_EQ(s.site(id)->store().Get(0)->value, 105);
  }
}

TEST(RecoveryTest, NameServerOutageHiddenBySchemaCache) {
  auto sys =
      RainbowSystem::Create(FixedLatencySystem(3, AcpKind::kTwoPhaseCommit));
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;
  // Warm the cache.
  bool c1 = false;
  ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Read(0)}, ""},
                       [&](const TxnOutcome& o) { c1 = o.committed; })
                  .ok());
  s.RunFor(Millis(100));
  ASSERT_TRUE(c1);
  s.name_server().Crash();
  bool c2 = false;
  ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Read(0)}, ""},
                       [&](const TxnOutcome& o) { c2 = o.committed; })
                  .ok());
  s.RunFor(Millis(200));
  EXPECT_TRUE(c2) << "cached schema should mask the name-server outage";
  // A cold item at another site cannot be resolved: aborts with RCP/other.
  bool c3 = true;
  ASSERT_TRUE(s.Submit(1, TxnProgram{{Op::Read(7)}, ""},
                       [&](const TxnOutcome& o) { c3 = o.committed; })
                  .ok());
  s.RunFor(Millis(500));
  EXPECT_FALSE(c3);
  s.name_server().Recover();
  bool c4 = false;
  ASSERT_TRUE(s.Submit(1, TxnProgram{{Op::Read(7)}, ""},
                       [&](const TxnOutcome& o) { c4 = o.committed; })
                  .ok());
  s.RunFor(Millis(500));
  EXPECT_TRUE(c4);
}

TEST(RecoveryTest, PartitionPreventsCrossGroupCommits) {
  auto sys =
      RainbowSystem::Create(FixedLatencySystem(5, AcpKind::kTwoPhaseCommit));
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;
  // Warm schema caches first so the name server is not the bottleneck.
  for (SiteId h = 0; h < 5; ++h) {
    ASSERT_TRUE(s.Submit(h, TxnProgram{{Op::Read(0), Op::Read(1)}, ""},
                         nullptr)
                    .ok());
  }
  s.RunFor(Millis(200));

  s.net().SetPartitions({{0, 1}, {2, 3, 4}});
  // Items are on all 5 sites with majority quorum 3: the minority side
  // can never write; the majority side succeeds once its failure
  // detector has learned which sites are unreachable.
  bool minority_committed = false, majority_committed = false;
  for (int attempt = 0; attempt < 3; ++attempt) {
    ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Write(0, 1)}, ""},
                         [&](const TxnOutcome& o) {
                           minority_committed |= o.committed;
                         })
                    .ok());
    if (!majority_committed) {
      ASSERT_TRUE(s.Submit(2, TxnProgram{{Op::Write(1, 2)}, ""},
                           [&](const TxnOutcome& o) {
                             majority_committed |= o.committed;
                           })
                      .ok());
    }
    s.RunFor(Seconds(1));
  }
  EXPECT_FALSE(minority_committed);
  EXPECT_TRUE(majority_committed);

  s.net().HealPartitions();
  bool healed = false;
  ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Write(0, 3)}, ""},
                       [&](const TxnOutcome& o) { healed = o.committed; })
                  .ok());
  s.RunFor(Seconds(1));
  EXPECT_TRUE(healed);
}

TEST(RecoveryTest, FaultInjectorApplyIsIdempotent) {
  // Regression: a scripted crash racing the random-fault process used to
  // crash an already-down site (double-counting the fault and restarting
  // the downtime window). Duplicate events must now be silent no-ops.
  auto sys =
      RainbowSystem::Create(FixedLatencySystem(3, AcpKind::kTwoPhaseCommit));
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;
  FaultInjector inject(&s);
  inject.Schedule(FaultEvent::Crash(Millis(1), 1));
  inject.Schedule(FaultEvent::Crash(Millis(2), 1));  // duplicate
  inject.Schedule(FaultEvent::Crash(Millis(3), 1));  // duplicate
  inject.Schedule(FaultEvent::Recover(Millis(10), 1));
  inject.Schedule(FaultEvent::Recover(Millis(11), 1));  // duplicate
  s.RunFor(Millis(20));

  EXPECT_TRUE(s.net().IsSiteUp(1));
  EXPECT_EQ(inject.crashes_injected(), 1u);
  EXPECT_EQ(inject.recoveries_injected(), 1u);
  EXPECT_EQ(s.monitor().faults_injected(FaultEvent::Kind::kCrashSite), 1u);
  EXPECT_EQ(s.monitor().faults_injected(FaultEvent::Kind::kRecoverSite), 1u);
}

TEST(RecoveryTest, RandomFaultsAlwaysEndRecovered) {
  // Regression: EnableRandomFaults could leave a site down past `until`
  // when its recovery event fell outside the window. The injector now
  // sweeps at `until` and recovers every downed site.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    auto sys = RainbowSystem::Create(
        FixedLatencySystem(3, AcpKind::kTwoPhaseCommit));
    ASSERT_TRUE(sys.ok());
    RainbowSystem& s = **sys;
    FaultInjector inject(&s);
    // Short up-times and long down-times maximize the chance a recovery
    // would have been scheduled past the window end.
    inject.EnableRandomFaults(Millis(40), Millis(300), Millis(500), seed);
    s.RunFor(Millis(500));
    for (SiteId id = 0; id < 3; ++id) {
      EXPECT_TRUE(s.net().IsSiteUp(id))
          << "seed " << seed << ": site " << id << " left down past until";
    }
    // The recovered system still commits.
    bool committed = false;
    ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Write(2, 1)}, ""},
                         [&](const TxnOutcome& o) { committed = o.committed; })
                    .ok());
    s.RunFor(Seconds(1));
    EXPECT_TRUE(committed) << "seed " << seed;
  }
}

TEST(RecoveryTest, DupStormDuringVoteCollectionIsHarmless) {
  // Satellite of the nemesis fault vocabulary: duplicate every message
  // between the coordinator and its participants exactly while 2PC
  // collects votes. Duplicate suppression must keep the exchange
  // idempotent: one commit, converged replicas, clean checker.
  SystemConfig cfg = FixedLatencySystem(3, AcpKind::kTwoPhaseCommit);
  cfg.record_history = true;
  cfg.trace_enabled = true;
  cfg.trace_detail = TraceDetail::kProtocol;
  auto sys = RainbowSystem::Create(cfg);
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;
  FaultInjector inject(&s);
  // Votes fly at ~4-6ms (1ms fixed latency); storm from the start so
  // prewrites, prepares, votes and decisions are all duplicated.
  for (SiteId p = 1; p < 3; ++p) {
    inject.Schedule(FaultEvent::LinkDup(0, 0, p, 1.0));
    inject.Schedule(FaultEvent::LinkDup(0, p, 0, 1.0));
    inject.Schedule(FaultEvent::LinkDup(Millis(50), 0, p, 0.0));
    inject.Schedule(FaultEvent::LinkDup(Millis(50), p, 0, 0.0));
  }
  bool committed = false;
  ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Write(3, 777), Op::Write(4, 888)}, ""},
                       [&](const TxnOutcome& o) { committed = o.committed; })
                  .ok());
  s.RunFor(Seconds(1));
  EXPECT_TRUE(committed);
  EXPECT_GT(s.net().stats().duplicated, 0u);
  EXPECT_GT(s.net().stats().rpc_duplicates_suppressed, 0u);
  EXPECT_TRUE(s.CheckReplicaConsistency(false).ok());
  CheckReport report = s.VerifyHistory();
  EXPECT_TRUE(report.ok()) << report.Render();
  auto latest = s.LatestCommitted(3);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->value, 777);
}

TEST(RecoveryTest, AsymmetricLossCoordinatorToParticipant) {
  // Grey failure: the coordinator's requests to one participant all
  // vanish while the reverse direction stays healthy. The RPC layer
  // retries, times out, and the transaction aborts cleanly; after the
  // link heals the same program commits.
  SystemConfig cfg = FixedLatencySystem(3, AcpKind::kTwoPhaseCommit);
  cfg.record_history = true;
  cfg.trace_enabled = true;
  cfg.trace_detail = TraceDetail::kProtocol;
  cfg.protocols.rcp = RcpKind::kRowa;  // the write needs every copy
  auto sys = RainbowSystem::Create(cfg);
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;
  FaultInjector inject(&s);
  inject.Schedule(FaultEvent::LinkLoss(0, 0, 2, 1.0));

  bool done = false;
  TxnOutcome outcome;
  ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Write(3, 9)}, ""},
                       [&](const TxnOutcome& o) {
                         outcome = o;
                         done = true;
                       })
                  .ok());
  s.RunFor(Seconds(1));
  ASSERT_TRUE(done);
  EXPECT_FALSE(outcome.committed);
  EXPECT_GT(s.net()
                .stats()
                .dropped[static_cast<size_t>(DropCause::kLinkLoss)],
            0u);

  inject.ApplyNow(FaultEvent::LinkLoss(0, 0, 2, 0.0));
  bool committed = false;
  ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Write(3, 9)}, ""},
                       [&](const TxnOutcome& o) { committed = o.committed; })
                  .ok());
  s.RunFor(Seconds(1));
  EXPECT_TRUE(committed);
  EXPECT_TRUE(s.CheckReplicaConsistency(false).ok());
  CheckReport report = s.VerifyHistory();
  EXPECT_TRUE(report.ok()) << report.Render();
}

TEST(RecoveryTest, DelaySpikeBeyondRetryBudgetGivesUp) {
  // A delay spike larger than rpc_max_attempts x backoff: every attempt
  // of an operation RPC is still in flight when the op timeout fires.
  // The workload's retries also exhaust (gave_up moves), yet the
  // checker stays clean — slow is not incorrect.
  SystemConfig cfg = FixedLatencySystem(3, AcpKind::kTwoPhaseCommit);
  cfg.record_history = true;
  cfg.trace_enabled = true;
  cfg.trace_detail = TraceDetail::kProtocol;
  cfg.protocols.rcp = RcpKind::kRowa;
  auto sys = RainbowSystem::Create(cfg);
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;
  FaultInjector inject(&s);
  // One-way delay becomes ~300ms > op_timeout (80ms); both directions
  // of the 0-2 link spike for the first 2 simulated seconds.
  inject.Schedule(FaultEvent::LinkDelay(0, 0, 2, 300.0));
  inject.Schedule(FaultEvent::LinkDelay(0, 2, 0, 300.0));
  inject.Schedule(FaultEvent::LinkDelay(Seconds(2), 0, 2, 1.0));
  inject.Schedule(FaultEvent::LinkDelay(Seconds(2), 2, 0, 1.0));

  WorkloadConfig wl;
  wl.seed = 11;
  wl.num_txns = 10;
  wl.mpl = 2;
  wl.read_fraction = 0.0;
  WorkloadGenerator wlg(&s, wl);
  wlg.Run();
  s.RunFor(Seconds(4));

  EXPECT_GT(wlg.gave_up(), 0u);
  CheckReport report = s.VerifyHistory();
  EXPECT_TRUE(report.ok()) << report.Render();
  EXPECT_TRUE(s.CheckReplicaConsistency(false).ok());
}

TEST(RecoveryTest, StrandedParticipantReadmitsStaleDecisionQuery) {
  // Sever both reply paths into participant 2 (asymmetric cuts 0->2 and
  // 1->2) right after it voted: its decision queries to the coordinator
  // keep retransmitting with the same rpc_id while answers die on the
  // severed direction. Meanwhile a churn of doomed writes from site 2
  // rotates site 0's per-sender duplicate window (capacity 256) past
  // that rpc_id, so the retransmission is readmitted as stale and
  // re-executed — the rpc_stale_readmitted counter must move, and the
  // re-execution must stay harmless once the links heal.
  SystemConfig cfg = FixedLatencySystem(3, AcpKind::kTwoPhaseCommit,
                                        RcpKind::kRowa);
  cfg.seed = 9;
  cfg.latency.min = 0;
  cfg.record_history = true;
  cfg.trace_enabled = true;
  cfg.trace_detail = TraceDetail::kProtocol;
  auto sys = RainbowSystem::Create(cfg);
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;
  FaultInjector inject(&s);
  inject.Schedule(FaultEvent::LinkDownOneWay(Micros(6300), 0, 2));
  inject.Schedule(FaultEvent::LinkDownOneWay(Micros(6300), 1, 2));
  inject.Schedule(FaultEvent::LinkUpOneWay(Seconds(5), 0, 2));
  inject.Schedule(FaultEvent::LinkUpOneWay(Seconds(5), 1, 2));

  bool committed = false;
  s.sim().At(0, [&] {
    (void)s.Submit(0, TxnProgram{{Op::Write(3, 9)}, "stranded"},
                   [&](const TxnOutcome& out) { committed = out.committed; });
  });
  for (int i = 0; i < 400; ++i) {
    s.sim().At(Millis(10) + i * Millis(10), [&s, i] {
      (void)s.Submit(
          2, TxnProgram{{Op::Write(4 + static_cast<ItemId>(i % 6), i)}, ""},
          nullptr);
    });
  }
  s.RunFor(Seconds(8));

  EXPECT_GT(s.net().stats().rpc_stale_readmitted, 0u);
  EXPECT_TRUE(committed);
  EXPECT_EQ(s.site(2)->active_participants(), 0u);
  EXPECT_TRUE(s.CheckReplicaConsistency(false).ok());
  CheckReport report = s.VerifyHistory();
  EXPECT_TRUE(report.ok()) << report.Render();
}

// --- page-engine ARIES restart -------------------------------------------

size_t CountStoreKind(const Wal& wal, WalRecordKind kind) {
  size_t n = 0;
  for (const auto& rec : wal.records()) {
    if (rec.kind == kind) ++n;
  }
  return n;
}

/// The "restart: ..." trace line the recovering site emits, or "".
std::string RestartTraceLine(RainbowSystem& s, SiteId site) {
  for (const auto& ev : s.trace().events()) {
    if (ev.site == site && ev.text.rfind("restart:", 0) == 0) return ev.text;
  }
  return "";
}

TEST(RecoveryTest, RedoRestoresCommittedWritesLostWithThePool) {
  // Commit a write, then crash the site before anything is flushed: the
  // new value exists only in the WAL. The restart pass's redo must
  // rebuild the page from the log (the trace reports redo > 0), and the
  // page must carry the committed value before refresh even runs.
  SystemConfig cfg = FixedLatencySystem(3, AcpKind::kTwoPhaseCommit);
  cfg.enable_trace = true;
  auto sys = RainbowSystem::Create(cfg);
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;

  bool committed = false;
  ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Write(3, 777)}, ""},
                       [&](const TxnOutcome& o) { committed = o.committed; })
                  .ok());
  s.RunFor(Millis(100));
  ASSERT_TRUE(committed);
  ASSERT_EQ(s.site(1)->store().Get(3)->value, 777);

  // The participant logged real ARIES records for the commit.
  EXPECT_GT(CountStoreKind(s.site(1)->wal(), WalRecordKind::kStoreUpdate), 0u);
  EXPECT_GT(CountStoreKind(s.site(1)->wal(), WalRecordKind::kStoreCommit), 0u);

  s.CrashSite(1);  // drops the buffer pool: committed pages were dirty
  s.RunFor(Millis(5));
  s.RecoverSite(1);
  s.RunFor(Millis(100));

  std::string line = RestartTraceLine(s, 1);
  ASSERT_FALSE(line.empty()) << "recovery did not run the restart pass";
  EXPECT_EQ(line.find("redo=0 "), std::string::npos) << line;
  EXPECT_EQ(s.site(1)->store().Get(3)->value, 777);
  EXPECT_EQ(s.site(1)->store().Get(3)->version, 1u);
  EXPECT_TRUE(s.CheckReplicaConsistency(false).ok());
}

TEST(RecoveryTest, CrashSweepAlwaysRestartsCleanAndSometimesUndoes) {
  // Sweep the crash over the transaction lifetime. Every recovery must
  // run the analysis->redo->undo pass; across the sweep at least one
  // crash point must catch a granted-but-undecided prewrite, whose
  // rollback appends genuine CLR + end records to the log.
  size_t restarts_seen = 0;
  size_t undo_runs = 0;
  for (SimTime crash_at = Millis(1); crash_at <= Millis(12);
       crash_at += Micros(500)) {
    SystemConfig cfg = FixedLatencySystem(3, AcpKind::kTwoPhaseCommit);
    cfg.enable_trace = true;
    auto sys = RainbowSystem::Create(cfg);
    ASSERT_TRUE(sys.ok());
    RainbowSystem& s = **sys;
    FaultInjector inject(&s);
    inject.Schedule(FaultEvent::Crash(crash_at, 1));
    inject.Schedule(FaultEvent::Recover(Millis(700), 1));

    ASSERT_TRUE(
        s.Submit(0, TxnProgram{{Op::Write(3, 777), Op::Write(5, 888)}, ""},
                 nullptr)
            .ok());
    s.RunFor(Seconds(3));

    std::string line = RestartTraceLine(s, 1);
    ASSERT_FALSE(line.empty()) << "crash_at=" << crash_at;
    ++restarts_seen;
    if (line.find("losers=0") == std::string::npos) {
      ++undo_runs;
      EXPECT_GT(CountStoreKind(s.site(1)->wal(), WalRecordKind::kStoreClr), 0u)
          << "crash_at=" << crash_at;
      EXPECT_GT(CountStoreKind(s.site(1)->wal(), WalRecordKind::kStoreEnd), 0u)
          << "crash_at=" << crash_at;
    }
    EXPECT_TRUE(s.CheckReplicaConsistency(false).ok())
        << "crash_at=" << crash_at;
  }
  EXPECT_GT(restarts_seen, 0u);
  EXPECT_GT(undo_runs, 0u) << "no crash point exercised the undo pass";
}

TEST(RecoveryTest, MapEngineStillRecoversWithoutRestartPass) {
  // The legacy engine remains selectable and recovers through the
  // protocol log alone (no ARIES pass, no store records).
  SystemConfig cfg = FixedLatencySystem(3, AcpKind::kTwoPhaseCommit);
  cfg.enable_trace = true;
  cfg.protocols.storage_engine = StorageEngineKind::kMap;
  auto sys = RainbowSystem::Create(cfg);
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;
  bool committed = false;
  ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Write(3, 321)}, ""},
                       [&](const TxnOutcome& o) { committed = o.committed; })
                  .ok());
  s.RunFor(Millis(100));
  ASSERT_TRUE(committed);
  EXPECT_EQ(CountStoreKind(s.site(1)->wal(), WalRecordKind::kStoreUpdate), 0u);
  s.CrashSite(1);
  s.RunFor(Millis(5));
  s.RecoverSite(1);
  s.RunFor(Millis(200));
  EXPECT_TRUE(RestartTraceLine(s, 1).empty());
  EXPECT_EQ(s.site(1)->store().Get(3)->value, 321);
  EXPECT_TRUE(s.CheckReplicaConsistency(false).ok());
}

TEST(RecoveryTest, CrashDuringCheckpointSweep) {
  // Sweep the crash over every phase of a fuzzy checkpoint — before
  // begin, between begin and end, after end, and deep into the next
  // batch of commits — and check the restarted store against a shadow
  // map at every cut. A checkpoint must never make recovery wrong, only
  // cheaper.
  for (int cut = 0; cut < 5; ++cut) {
    Wal wal;
    PageStoreOptions opts;
    opts.page_size = 128;
    opts.pool_pages = 8;
    PageStore store(&wal, opts);
    std::map<ItemId, ItemCopy> shadow;
    for (ItemId i = 0; i < 16; ++i) {
      store.Load(i, 0);
      shadow[i] = ItemCopy{0, 0};
    }
    store.FlushAll();

    Version ver = 1;
    auto commit = [&](ItemId item, Value value) {
      TxnId txn{0, ver};
      store.LogPrewrite(txn, item, value);
      ASSERT_TRUE(store.Apply(item, value, ver, txn));
      store.CommitStorageTxn(txn);
      shadow[item] = ItemCopy{value, ver};
      ++ver;
    };

    for (ItemId i = 0; i < 16; ++i) commit(i, static_cast<Value>(i + 100));
    // One in-flight loser at the crash, whatever the cut.
    store.LogPrewrite(TxnId{0, 999}, 3, 3333);

    if (cut >= 1) {
      Lsn begin = store.BeginCheckpoint();
      if (cut >= 2) store.EndCheckpoint(begin);
    }
    if (cut >= 3) {
      for (ItemId i = 0; i < 6; ++i) commit(i, static_cast<Value>(i + 200));
    }
    if (cut >= 4) store.Checkpoint();

    store.OnCrash();
    RestartSummary rs = store.Restart();
    ASSERT_EQ(rs.tentative_leaks, 0u) << "cut=" << cut;
    EXPECT_GE(rs.losers, 1u) << "cut=" << cut;
    ASSERT_EQ(store.Snapshot(), shadow) << "cut=" << cut;

    // A second crash right after restart must also converge (the CLRs
    // appended by undo are themselves recoverable).
    store.OnCrash();
    RestartSummary again = store.Restart();
    ASSERT_EQ(again.tentative_leaks, 0u) << "cut=" << cut;
    EXPECT_EQ(again.losers, 0u) << "cut=" << cut;
    ASSERT_EQ(store.Snapshot(), shadow) << "cut=" << cut;
  }
}

TEST(RecoveryTest, TruncatedLogCrashSweep) {
  // Checkpoint-end truncation reclaims the WAL head while transactions
  // keep committing. Sweep the crash over an increasing number of
  // commit rounds (so it lands before the first checkpoint, right
  // after one, and deep into a heavily truncated log) with one
  // in-flight loser at every cut: restart must converge on the shadow
  // map from the retained suffix alone, twice in a row.
  Lsn max_base_seen = 0;
  for (int crash_round = 1; crash_round <= 6; ++crash_round) {
    Wal wal;
    PageStoreOptions opts;
    opts.page_size = 128;
    opts.pool_pages = 8;
    opts.checkpoint_interval = 16;
    PageStore store(&wal, opts);
    std::map<ItemId, ItemCopy> shadow;
    for (ItemId i = 0; i < 16; ++i) {
      store.Load(i, 0);
      shadow[i] = ItemCopy{0, 0};
    }
    store.FlushAll();

    Version ver = 1;
    auto commit = [&](ItemId item, Value value) {
      TxnId txn{0, ver};
      store.LogPrewrite(txn, item, value);
      ASSERT_TRUE(store.Apply(item, value, ver, txn));
      store.CommitStorageTxn(txn);
      shadow[item] = ItemCopy{value, ver};
      ++ver;
    };
    for (int round = 0; round < crash_round; ++round) {
      for (ItemId i = 0; i < 16; i += 2) {
        commit(i, static_cast<Value>(100 * round + i));
      }
    }
    // One granted-but-undecided prewrite in flight at the crash.
    store.LogPrewrite(TxnId{0, 999}, 3, 3333);

    const Lsn base_at_crash = wal.base();
    max_base_seen = std::max(max_base_seen, base_at_crash);
    store.OnCrash();
    RestartSummary rs = store.Restart();
    ASSERT_EQ(rs.tentative_leaks, 0u) << "crash_round=" << crash_round;
    EXPECT_GE(rs.losers, 1u) << "crash_round=" << crash_round;
    ASSERT_EQ(store.Snapshot(), shadow) << "crash_round=" << crash_round;
    // Restart never resurrects reclaimed head records.
    EXPECT_GE(wal.base(), base_at_crash);
    // Analysis started no earlier than the retained head.
    EXPECT_GT(rs.redo_start, base_at_crash) << "crash_round=" << crash_round;

    store.OnCrash();
    RestartSummary again = store.Restart();
    ASSERT_EQ(again.tentative_leaks, 0u) << "crash_round=" << crash_round;
    EXPECT_EQ(again.losers, 0u) << "crash_round=" << crash_round;
    ASSERT_EQ(store.Snapshot(), shadow) << "crash_round=" << crash_round;
  }
  // The sweep must actually have exercised a truncated log.
  EXPECT_GT(max_base_seen, 0u);
}

TEST(RecoveryTest, DoubleCrashDuringRedoConverges) {
  // Crash a second time WHILE the redo pass is writing pages back: the
  // faulty disk drops every write (journal included) after the first k,
  // modelling the machine dying mid-recovery. Repeating history must
  // make the third restart land on the same committed state regardless
  // of where the second crash cut the write-back sequence.
  for (uint64_t k = 0; k <= 6; ++k) {
    Wal wal;
    PageStoreOptions opts;
    opts.page_size = 128;
    opts.pool_pages = 8;  // small pool: redo evicts, so it writes early
    opts.checkpoint_interval = 64;
    PageStore store(&wal, opts);
    std::map<ItemId, ItemCopy> shadow;
    for (ItemId i = 0; i < 32; ++i) {
      store.Load(i, 0);
      shadow[i] = ItemCopy{0, 0};
    }
    store.FlushAll();

    Version ver = 1;
    for (int round = 0; round < 3; ++round) {
      for (ItemId i = 0; i < 32; i += 2) {
        TxnId txn{0, ver};
        Value value = static_cast<Value>(1000 * round + i);
        store.LogPrewrite(txn, i, value);
        ASSERT_TRUE(store.Apply(i, value, ver, txn));
        store.CommitStorageTxn(txn);
        shadow[i] = ItemCopy{value, ver};
        ++ver;
      }
    }

    store.OnCrash();
    store.mutable_disk().ArmWriteLimit(k);
    RestartSummary first = store.Restart();
    ASSERT_EQ(first.tentative_leaks, 0u) << "k=" << k;

    // Second crash: whatever restart managed to write back beyond the
    // first k page writes never reached the disk.
    store.OnCrash();
    store.mutable_disk().DisarmWriteLimit();
    RestartSummary second = store.Restart();
    ASSERT_EQ(second.tentative_leaks, 0u) << "k=" << k;
    ASSERT_EQ(store.Snapshot(), shadow) << "k=" << k;
  }
  // Sanity: small k really did drop writes in at least one iteration.
}

TEST(RecoveryTest, StorageFaultsDuringWorkloadStayInvisible) {
  // End-to-end: torn writes armed on a live site's disk via the fault
  // injector, a crash while armed, and recovery — with checksums on,
  // the doublewrite heals every mangled page and replicas converge.
  SystemConfig cfg = FixedLatencySystem(3, AcpKind::kTwoPhaseCommit);
  cfg.enable_trace = true;
  cfg.AddFullyReplicatedItems(20, 100);  // 30 items total: the tree
  cfg.protocols.page_size = 64;          // spans ~2x the pool, so every
  cfg.protocols.buffer_pool_pages = 8;   // txn causes real evictions
  cfg.protocols.checkpoint_interval = 32;
  auto sys = RainbowSystem::Create(cfg);
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;
  FaultInjector inject(&s);
  inject.Schedule(FaultEvent::StorageTorn(Millis(1), 1, 0.5));
  inject.Schedule(FaultEvent::Crash(Millis(20), 1));
  inject.Schedule(FaultEvent::Recover(Millis(60), 1));
  inject.Schedule(FaultEvent::StorageTorn(Millis(2500), 1, 0.0));

  WorkloadConfig wl;
  wl.seed = 11;
  wl.num_txns = 60;
  wl.mpl = 3;
  WorkloadGenerator wlg(&s, wl);
  wlg.Run();
  s.RunFor(Seconds(3));

  EXPECT_TRUE(s.CheckReplicaConsistency(false).ok())
      << s.CheckReplicaConsistency(false).ToString();
  // The armed window really tore writes (and survived the crash).
  EXPECT_GT(s.site(1)->store().name() == std::string("page")
                ? static_cast<const PageStore&>(s.site(1)->store())
                      .disk()
                      .torn_writes()
                : 0u,
            0u);
}

}  // namespace
}  // namespace rainbow
