#include <gtest/gtest.h>

#include "core/system.h"
#include "fault/fault_injector.h"

namespace rainbow {
namespace {

/// Fixed latency makes protocol phase timing predictable enough to place
/// crashes inside specific windows.
SystemConfig FixedLatencySystem(uint32_t sites, AcpKind acp,
                                RcpKind rcp = RcpKind::kQuorumConsensus) {
  SystemConfig cfg;
  cfg.seed = 99;
  cfg.num_sites = sites;
  cfg.latency.distribution = LatencyDistribution::kFixed;
  cfg.latency.mean = Millis(1);
  cfg.latency.min = Micros(100);
  cfg.latency.per_kb = 0;
  cfg.protocols.acp = acp;
  cfg.protocols.rcp = rcp;
  cfg.AddFullyReplicatedItems(10, 100);
  return cfg;
}

/// Asserts every copy of every item carries the same (version, value) —
/// full convergence, which holds in these tests after recovery+refresh.
void ExpectConverged(RainbowSystem& sys) {
  EXPECT_TRUE(sys.CheckReplicaConsistency(true).ok())
      << sys.CheckReplicaConsistency(true).ToString();
}

TEST(RecoveryTest, SubmitToCrashedSiteFailsFast) {
  auto sys = RainbowSystem::Create(FixedLatencySystem(3, AcpKind::kTwoPhaseCommit));
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;
  s.CrashSite(0);
  TxnOutcome outcome;
  bool done = false;
  ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Read(0)}, ""},
                       [&](const TxnOutcome& o) {
                         outcome = o;
                         done = true;
                       })
                  .ok());
  s.RunFor(Millis(10));
  ASSERT_TRUE(done);
  EXPECT_FALSE(outcome.committed);
  EXPECT_EQ(outcome.abort_cause, AbortCause::kSiteFailure);
}

TEST(RecoveryTest, HomeCrashMidFlightIsAtomic) {
  // Sweep the crash over the whole transaction lifetime: whatever the
  // instant, after recovery every replica must agree (all version 0 or
  // all version 1 with value 777).
  for (SimTime crash_at = Millis(1); crash_at <= Millis(12);
       crash_at += Micros(500)) {
    auto sys =
        RainbowSystem::Create(FixedLatencySystem(3, AcpKind::kTwoPhaseCommit));
    ASSERT_TRUE(sys.ok());
    RainbowSystem& s = **sys;
    FaultInjector inject(&s);
    inject.Schedule(FaultEvent::Crash(crash_at, 0));
    inject.Schedule(FaultEvent::Recover(Millis(700), 0));

    ASSERT_TRUE(
        s.Submit(0, TxnProgram{{Op::Write(3, 777)}, ""}, nullptr).ok());
    s.RunFor(Seconds(3));

    // The write quorum was {site 0, site 1} (preferred subset). Either
    // the transaction committed — both quorum copies at version 1 with
    // the new value — or it aborted and no copy changed. Site 2 may
    // legitimately stay at version 0 under QC.
    Version v0 = s.site(0)->store().Get(3)->version;
    Version v1 = s.site(1)->store().Get(3)->version;
    EXPECT_EQ(v0, v1) << "crash_at=" << crash_at
                      << ": quorum copies diverged";
    if (v0 == 1) {
      EXPECT_EQ(s.site(0)->store().Get(3)->value, 777);
      EXPECT_EQ(s.site(1)->store().Get(3)->value, 777);
    } else {
      EXPECT_EQ(s.site(0)->store().Get(3)->value, 100);
    }
    EXPECT_TRUE(s.CheckReplicaConsistency(false).ok());
  }
}

TEST(RecoveryTest, ParticipantCrashMidFlightIsAtomic) {
  for (SimTime crash_at = Millis(1); crash_at <= Millis(12);
       crash_at += Micros(500)) {
    auto sys =
        RainbowSystem::Create(FixedLatencySystem(3, AcpKind::kTwoPhaseCommit));
    ASSERT_TRUE(sys.ok());
    RainbowSystem& s = **sys;
    FaultInjector inject(&s);
    inject.Schedule(FaultEvent::Crash(crash_at, 2));
    inject.Schedule(FaultEvent::Recover(Millis(700), 2));

    bool committed = false;
    ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Write(3, 555)}, ""},
                         [&](const TxnOutcome& o) { committed = o.committed; })
                    .ok());
    s.RunFor(Seconds(3));

    // Atomicity across the surviving + recovered replicas: a committed
    // transaction's write must be at every copy (refresh heals the
    // crashed one); an aborted one must be nowhere.
    for (SiteId id = 0; id < 3; ++id) {
      auto copy = s.site(id)->store().Get(3);
      ASSERT_TRUE(copy.ok());
      if (committed) {
        EXPECT_EQ(copy->value, 555) << "crash_at=" << crash_at;
        EXPECT_EQ(copy->version, 1u);
      } else {
        EXPECT_EQ(copy->version, 0u) << "crash_at=" << crash_at;
      }
    }
  }
}

TEST(RecoveryTest, CoordinatorCrashAfterCommitResendsDecision) {
  auto sys =
      RainbowSystem::Create(FixedLatencySystem(3, AcpKind::kTwoPhaseCommit));
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;

  bool committed = false;
  ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Write(1, 42)}, ""},
                       [&](const TxnOutcome& o) {
                         committed = o.committed;
                         // Crash the home the instant the commit is
                         // reported: decision logged, acks not yet in.
                         s.CrashSite(0);
                       })
                  .ok());
  s.RunFor(Millis(300));
  EXPECT_TRUE(committed);
  s.RecoverSite(0);
  s.RunFor(Millis(500));
  // The recovered coordinator must re-propagate the commit to its write
  // quorum {0, 1} and redo its own copy.
  for (SiteId id = 0; id < 2; ++id) {
    auto copy = s.site(id)->store().Get(1);
    ASSERT_TRUE(copy.ok());
    EXPECT_EQ(copy->value, 42) << "site " << id;
    EXPECT_EQ(copy->version, 1u) << "site " << id;
  }
  auto latest = s.LatestCommitted(1);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->value, 42);
  EXPECT_TRUE(s.CheckReplicaConsistency(false).ok());
}

TEST(RecoveryTest, PreparedParticipantBlocksUntilCoordinatorReturns) {
  // 2PC's defining weakness: crash the coordinator between prepare and
  // decision; the prepared participants stay blocked (holding locks)
  // until it recovers and answers with presumed abort.
  auto sys =
      RainbowSystem::Create(FixedLatencySystem(3, AcpKind::kTwoPhaseCommit));
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;
  FaultInjector inject(&s);
  // Timeline with 1ms fixed latency: lookup ~2ms, prewrite ~4ms,
  // prepare sent ~4ms, votes back ~6ms. Crash at 5.5ms: after votes
  // were sent by participants, before the decision went out.
  inject.Schedule(FaultEvent::Crash(Micros(5500), 0));
  inject.Schedule(FaultEvent::Recover(Millis(400), 0));

  ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Write(2, 9)}, ""}, nullptr).ok());
  s.RunFor(Millis(200));
  // While the coordinator is down, at least one remote participant is
  // still prepared (in doubt), holding its write lock.
  size_t prepared_sites = 0;
  for (SiteId id = 1; id < 3; ++id) {
    prepared_sites += s.site(id)->active_participants() > 0;
  }
  EXPECT_GT(prepared_sites, 0u) << "participants resolved without coordinator";

  s.RunFor(Seconds(2));
  // After recovery: presumed abort. No copy changed.
  for (SiteId id = 0; id < 3; ++id) {
    EXPECT_EQ(s.site(id)->store().Get(2)->version, 0u);
    EXPECT_EQ(s.site(id)->active_participants(), 0u);
  }
  // Blocking was measured and spans (roughly) the outage.
  EXPECT_GT(s.monitor().blocked_times().max(), Millis(300));
}

TEST(RecoveryTest, ThreePcTerminatesWithoutCoordinator) {
  auto sys =
      RainbowSystem::Create(FixedLatencySystem(3, AcpKind::kThreePhaseCommit));
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;
  FaultInjector inject(&s);
  inject.Schedule(FaultEvent::Crash(Micros(5500), 0));
  // Coordinator never recovers within the run.

  ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Write(2, 9)}, ""}, nullptr).ok());
  s.RunFor(Seconds(2));

  // The surviving participants resolved the transaction on their own.
  for (SiteId id = 1; id < 3; ++id) {
    EXPECT_EQ(s.site(id)->active_participants(), 0u) << "site " << id;
  }
  // And they agree with each other.
  auto c1 = s.site(1)->store().Get(2);
  auto c2 = s.site(2)->store().Get(2);
  EXPECT_EQ(c1->version, c2->version);
  EXPECT_EQ(c1->value, c2->value);
  // Blocking is bounded by the termination timeout, far below the 2PC
  // blocking in the test above.
  EXPECT_LT(s.monitor().blocked_times().max(), Millis(600));
}

TEST(RecoveryTest, ThreePcDivergesUnderPartitionTheKnownLimitation) {
  // 3PC's correctness assumes crash-stop failures WITHOUT network
  // partitions. This test engineers the textbook counterexample and
  // asserts the divergence happens — documenting the limitation (and
  // giving lab exercise #8 its failing baseline):
  //  * ROWA write => participants {0, 1, 2} (home 0 coordinates);
  //  * the link 0-1 drops just before PreCommit, so participant 1 stays
  //    prepared while participant 2 reaches pre-committed;
  //  * the coordinator crashes; sites 1 and 2 are partitioned apart;
  //  * each runs the termination protocol alone: 1 (all-prepared) decides
  //    ABORT, 2 (pre-committed) decides COMMIT.
  SystemConfig cfg =
      FixedLatencySystem(3, AcpKind::kThreePhaseCommit, RcpKind::kRowa);
  cfg.protocols.recovery_refresh = false;  // keep the divergence visible
  auto sys = RainbowSystem::Create(cfg);
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;
  FaultInjector inject(&s);
  // Timeline (1ms fixed latency): lookup ~2ms, prewrite ~4ms, prepare
  // ~5ms, votes ~6ms, PreCommit leaves the coordinator at ~6ms.
  // Votes arrive at the coordinator at ~6.0ms and PreCommit departs in
  // the same instant; cutting the link at 6.3ms lets the votes through
  // but drops the PreCommit in flight to site 1 (connectivity is
  // re-checked at delivery time, ~7.0ms).
  inject.Schedule(FaultEvent::LinkDown(Micros(6300), 0, 1));
  inject.Schedule(FaultEvent::Crash(Micros(7500), 0));
  inject.Schedule(FaultEvent::Partition(Micros(7600), {{1}, {2}}));

  ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Write(3, 666)}, ""}, nullptr).ok());
  s.RunFor(Seconds(2));

  Version v1 = s.site(1)->store().Get(3)->version;
  Version v2 = s.site(2)->store().Get(3)->version;
  // The split brain: one participant aborted, the other committed.
  EXPECT_EQ(v1, 0u) << "site 1 should have terminated with ABORT";
  EXPECT_EQ(v2, 1u) << "site 2 should have terminated with COMMIT";
  EXPECT_EQ(s.site(2)->store().Get(3)->value, 666);
  // Both sides consider the transaction fully resolved.
  EXPECT_EQ(s.site(1)->active_participants(), 0u);
  EXPECT_EQ(s.site(2)->active_participants(), 0u);
}

TEST(RecoveryTest, OrphanedParticipantsCleanUp) {
  auto sys =
      RainbowSystem::Create(FixedLatencySystem(3, AcpKind::kTwoPhaseCommit));
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;
  FaultInjector inject(&s);
  // Crash the home right after its prewrites went out (~3ms), before
  // prepare: remote participants hold locks for an orphan.
  inject.Schedule(FaultEvent::Crash(Micros(3200), 0));

  ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Write(4, 1)}, ""}, nullptr).ok());
  s.RunFor(Seconds(5));

  EXPECT_GT(s.monitor().orphans(), 0u);
  for (SiteId id = 1; id < 3; ++id) {
    EXPECT_EQ(s.site(id)->active_participants(), 0u);
    EXPECT_EQ(s.site(id)->store().Get(4)->version, 0u);
  }
  // The released locks let later transactions commit without site 0 —
  // after one attempt primes the failure detector (the first write may
  // pick the dead site for its quorum and time out).
  bool committed = false;
  for (int attempt = 0; attempt < 2 && !committed; ++attempt) {
    ASSERT_TRUE(s.Submit(1, TxnProgram{{Op::Write(4, 2)}, ""},
                         [&](const TxnOutcome& o) { committed = o.committed; })
                    .ok());
    s.RunFor(Seconds(1));
  }
  EXPECT_TRUE(committed);
}

TEST(RecoveryTest, RecoveryRefreshCatchesUpMissedWrites) {
  auto sys =
      RainbowSystem::Create(FixedLatencySystem(3, AcpKind::kTwoPhaseCommit));
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;
  s.CrashSite(2);
  // Commit writes while site 2 is down (quorum 2 of 3 suffices).
  for (int i = 0; i < 5; ++i) {
    bool committed = false;
    ASSERT_TRUE(
        s.Submit(0, TxnProgram{{Op::Increment(static_cast<ItemId>(i), 10)}, ""},
                 [&](const TxnOutcome& o) { committed = o.committed; })
            .ok());
    s.RunFor(Millis(100));
    ASSERT_TRUE(committed) << "write " << i << " failed with a site down";
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(s.site(2)->store().Get(static_cast<ItemId>(i))->version, 0u);
  }
  s.RecoverSite(2);
  s.RunFor(Millis(200));
  for (int i = 0; i < 5; ++i) {
    auto copy = s.site(2)->store().Get(static_cast<ItemId>(i));
    EXPECT_EQ(copy->version, 1u) << "item " << i << " not refreshed";
    EXPECT_EQ(copy->value, 110);
  }
  ExpectConverged(s);
}

TEST(RecoveryTest, RowaWritesBlockWhileCopyDownThenResume) {
  auto sys = RainbowSystem::Create(
      FixedLatencySystem(3, AcpKind::kTwoPhaseCommit, RcpKind::kRowa));
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;
  s.CrashSite(2);

  bool write_committed = true;
  ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Write(0, 5)}, ""},
                       [&](const TxnOutcome& o) {
                         write_committed = o.committed;
                       })
                  .ok());
  // Reads still work (read-one).
  bool read_committed = false;
  ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Read(1)}, ""},
                       [&](const TxnOutcome& o) {
                         read_committed = o.committed;
                       })
                  .ok());
  s.RunFor(Seconds(1));
  EXPECT_FALSE(write_committed) << "ROWA write must fail with a copy down";
  EXPECT_TRUE(read_committed);

  s.RecoverSite(2);
  s.RunFor(Millis(100));
  bool committed = false;
  ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Write(0, 6)}, ""},
                       [&](const TxnOutcome& o) { committed = o.committed; })
                  .ok());
  s.RunFor(Seconds(1));
  EXPECT_TRUE(committed);
  ExpectConverged(s);
}

TEST(RecoveryTest, MvtoRecoverySeedsVersionChainFromStore) {
  SystemConfig cfg = FixedLatencySystem(3, AcpKind::kTwoPhaseCommit);
  cfg.protocols.cc = CcKind::kMultiversionTso;
  auto sys = RainbowSystem::Create(cfg);
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;

  // Commit a write, crash+recover a replica, then read THROUGH the
  // recovered site's fresh MVTO engine: it must serve the redone value
  // at the correct version, not a stale initial.
  bool committed = false;
  ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Write(2, 333)}, ""},
                       [&](const TxnOutcome& o) { committed = o.committed; })
                  .ok());
  s.RunFor(Millis(100));
  ASSERT_TRUE(committed);
  s.CrashSite(1);
  s.RunFor(Millis(50));
  s.RecoverSite(1);
  s.RunFor(Millis(100));

  TxnOutcome out;
  bool done = false;
  ASSERT_TRUE(s.Submit(1, TxnProgram{{Op::Read(2)}, ""},
                       [&](const TxnOutcome& o) {
                         out = o;
                         done = true;
                       })
                  .ok());
  s.RunFor(Millis(200));
  ASSERT_TRUE(done);
  ASSERT_TRUE(out.committed);
  ASSERT_EQ(out.reads.size(), 1u);
  EXPECT_EQ(out.reads[0], 333);
}

TEST(RecoveryTest, PrimaryCopyUnavailableWhilePrimaryDown) {
  auto sys = RainbowSystem::Create(FixedLatencySystem(
      3, AcpKind::kTwoPhaseCommit, RcpKind::kPrimaryCopy));
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;
  // Items are fully replicated with primary = first copy. Item 0's
  // primary is site 0 (AddUniformItems places copies round-robin from
  // the item index).
  s.CrashSite(0);
  bool committed = true;
  ASSERT_TRUE(s.Submit(1, TxnProgram{{Op::Read(0)}, ""},
                       [&](const TxnOutcome& o) { committed = o.committed; })
                  .ok());
  s.RunFor(Seconds(1));
  EXPECT_FALSE(committed) << "reads must fail while the primary is down";

  s.RecoverSite(0);
  s.RunFor(Millis(100));
  bool after = false;
  ASSERT_TRUE(s.Submit(1, TxnProgram{{Op::Increment(0, 5)}, ""},
                       [&](const TxnOutcome& o) { after = o.committed; })
                  .ok());
  s.RunFor(Seconds(1));
  EXPECT_TRUE(after);
  // The eager write reached every copy.
  for (SiteId id = 0; id < 3; ++id) {
    EXPECT_EQ(s.site(id)->store().Get(0)->value, 105);
  }
}

TEST(RecoveryTest, NameServerOutageHiddenBySchemaCache) {
  auto sys =
      RainbowSystem::Create(FixedLatencySystem(3, AcpKind::kTwoPhaseCommit));
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;
  // Warm the cache.
  bool c1 = false;
  ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Read(0)}, ""},
                       [&](const TxnOutcome& o) { c1 = o.committed; })
                  .ok());
  s.RunFor(Millis(100));
  ASSERT_TRUE(c1);
  s.name_server().Crash();
  bool c2 = false;
  ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Read(0)}, ""},
                       [&](const TxnOutcome& o) { c2 = o.committed; })
                  .ok());
  s.RunFor(Millis(200));
  EXPECT_TRUE(c2) << "cached schema should mask the name-server outage";
  // A cold item at another site cannot be resolved: aborts with RCP/other.
  bool c3 = true;
  ASSERT_TRUE(s.Submit(1, TxnProgram{{Op::Read(7)}, ""},
                       [&](const TxnOutcome& o) { c3 = o.committed; })
                  .ok());
  s.RunFor(Millis(500));
  EXPECT_FALSE(c3);
  s.name_server().Recover();
  bool c4 = false;
  ASSERT_TRUE(s.Submit(1, TxnProgram{{Op::Read(7)}, ""},
                       [&](const TxnOutcome& o) { c4 = o.committed; })
                  .ok());
  s.RunFor(Millis(500));
  EXPECT_TRUE(c4);
}

TEST(RecoveryTest, PartitionPreventsCrossGroupCommits) {
  auto sys =
      RainbowSystem::Create(FixedLatencySystem(5, AcpKind::kTwoPhaseCommit));
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;
  // Warm schema caches first so the name server is not the bottleneck.
  for (SiteId h = 0; h < 5; ++h) {
    ASSERT_TRUE(s.Submit(h, TxnProgram{{Op::Read(0), Op::Read(1)}, ""},
                         nullptr)
                    .ok());
  }
  s.RunFor(Millis(200));

  s.net().SetPartitions({{0, 1}, {2, 3, 4}});
  // Items are on all 5 sites with majority quorum 3: the minority side
  // can never write; the majority side succeeds once its failure
  // detector has learned which sites are unreachable.
  bool minority_committed = false, majority_committed = false;
  for (int attempt = 0; attempt < 3; ++attempt) {
    ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Write(0, 1)}, ""},
                         [&](const TxnOutcome& o) {
                           minority_committed |= o.committed;
                         })
                    .ok());
    if (!majority_committed) {
      ASSERT_TRUE(s.Submit(2, TxnProgram{{Op::Write(1, 2)}, ""},
                           [&](const TxnOutcome& o) {
                             majority_committed |= o.committed;
                           })
                      .ok());
    }
    s.RunFor(Seconds(1));
  }
  EXPECT_FALSE(minority_committed);
  EXPECT_TRUE(majority_committed);

  s.net().HealPartitions();
  bool healed = false;
  ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Write(0, 3)}, ""},
                       [&](const TxnOutcome& o) { healed = o.committed; })
                  .ok());
  s.RunFor(Seconds(1));
  EXPECT_TRUE(healed);
}

}  // namespace
}  // namespace rainbow
