// Coverage of the human-facing rendering surfaces: name functions for
// every enum, ToString forms, tables, CSV, charts, network stats.

#include <gtest/gtest.h>

#include "cc/cc_engine.h"
#include "common/histogram.h"
#include "common/table.h"
#include "common/trace.h"
#include "net/network.h"
#include "rcp/rcp_policy.h"
#include "txn/transaction.h"

namespace rainbow {
namespace {

TEST(NamesTest, EveryEnumValueHasAName) {
  for (int k = 0; k < static_cast<int>(MessageKind::kCount); ++k) {
    EXPECT_STRNE(MessageKindName(static_cast<MessageKind>(k)), "?")
        << "MessageKind " << k;
  }
  for (auto c : {AbortCause::kNone, AbortCause::kCcp, AbortCause::kRcp,
                 AbortCause::kAcp, AbortCause::kSiteFailure,
                 AbortCause::kOther}) {
    EXPECT_STRNE(AbortCauseName(c), "?");
  }
  for (auto r :
       {DenyReason::kNone, DenyReason::kTsoTooLate,
        DenyReason::kDeadlockVictim, DenyReason::kSiteBusy,
        DenyReason::kUnknownTxn, DenyReason::kWounded,
        DenyReason::kWaitTimeout}) {
    EXPECT_STRNE(DenyReasonName(r), "?");
  }
  for (auto k : {RcpKind::kRowa, RcpKind::kRowaAvailable,
                 RcpKind::kQuorumConsensus, RcpKind::kPrimaryCopy}) {
    EXPECT_STRNE(RcpKindName(k), "?");
  }
  for (auto k : {CcKind::kTwoPhaseLocking, CcKind::kTimestampOrdering,
                 CcKind::kMultiversionTso}) {
    EXPECT_STRNE(CcKindName(k), "?");
  }
  for (auto p : {DeadlockPolicy::kWaitDie, DeadlockPolicy::kWoundWait,
                 DeadlockPolicy::kLocalWfg, DeadlockPolicy::kTimeoutOnly,
                 DeadlockPolicy::kEdgeChasing}) {
    EXPECT_STRNE(DeadlockPolicyName(p), "?");
  }
  for (auto s : {AcpState::kUnknown, AcpState::kActive, AcpState::kPrepared,
                 AcpState::kPreCommitted, AcpState::kCommitted,
                 AcpState::kAborted}) {
    EXPECT_STRNE(AcpStateName(s), "?");
  }
  for (auto c :
       {TraceCategory::kTxn, TraceCategory::kRcp, TraceCategory::kCcp,
        TraceCategory::kAcp, TraceCategory::kNet, TraceCategory::kFault,
        TraceCategory::kSite, TraceCategory::kGeneral}) {
    EXPECT_STRNE(TraceCategoryName(c), "?");
  }
}

TEST(OpToStringTest, AllKinds) {
  EXPECT_EQ(Op::Read(3).ToString(), "R(3)");
  EXPECT_EQ(Op::Write(4, 17).ToString(), "W(4=17)");
  EXPECT_EQ(Op::Increment(5, -2).ToString(), "I(5+=-2)");
  TxnProgram p;
  p.label = "demo";
  p.ops = {Op::Read(1), Op::Write(2, 9)};
  EXPECT_EQ(p.ToString(), "demo: R(1) W(2=9)");
  EXPECT_FALSE(p.read_only());
  TxnProgram ro;
  ro.ops = {Op::Read(1)};
  EXPECT_TRUE(ro.read_only());
}

TEST(TxnOutcomeToStringTest, CommitAndAbortForms) {
  TxnOutcome o;
  o.id = TxnId{2, 5};
  o.committed = true;
  o.submitted_at = 1000;
  o.finished_at = 4000;
  o.num_ops = 3;
  o.round_trips = 7;
  std::string s = o.ToString();
  EXPECT_NE(s.find("T5@2"), std::string::npos);
  EXPECT_NE(s.find("COMMIT"), std::string::npos);
  EXPECT_NE(s.find("rt=3000us"), std::string::npos);

  o.committed = false;
  o.abort_cause = AbortCause::kRcp;
  o.abort_detail = "quorum unattainable";
  s = o.ToString();
  EXPECT_NE(s.find("ABORT(rcp)"), std::string::npos);
  EXPECT_NE(s.find("quorum unattainable"), std::string::npos);
}

TEST(TablePrinterTest, CsvAndAlignment) {
  TablePrinter t({"name", "value"});
  t.AddRow({TablePrinter::Cell("alpha"), TablePrinter::Cell(int64_t{42})});
  t.AddRow({TablePrinter::Cell("beta"), TablePrinter::Cell(3.14159)});
  EXPECT_EQ(t.num_rows(), 2u);
  std::string csv = t.ToCsv();
  EXPECT_EQ(csv, "name,value\nalpha,42\nbeta,3.14\n");
  std::string rendered = t.ToString();
  // Numeric cells right-align: "42" ends at the column edge.
  EXPECT_NE(rendered.find("   42 |"), std::string::npos);
  EXPECT_NE(rendered.find("| alpha"), std::string::npos);
}

TEST(AsciiChartTest, ScalesBars) {
  std::string chart =
      AsciiChart("demo", {{0, 1.0}, {1, 2.0}, {2, 4.0}}, /*width=*/20);
  EXPECT_NE(chart.find("demo"), std::string::npos);
  // The max row has a full-width bar; the min row a quarter of it.
  EXPECT_NE(chart.find(std::string(20, '#')), std::string::npos);
  EXPECT_NE(chart.find(std::string(5, '#') + " "), std::string::npos);
}

TEST(AsciiChartTest, EmptyAndZeroSeries) {
  EXPECT_NE(AsciiChart("empty", {}).find("empty"), std::string::npos);
  std::string zeros = AsciiChart("zeros", {{0, 0.0}, {1, 0.0}});
  EXPECT_EQ(zeros.find('#'), std::string::npos);
}

TEST(HistogramTest, PercentileExtremes) {
  Histogram h;
  h.Add(0);
  h.Add(1'000'000'000);  // ~1e9: deep into the log buckets
  EXPECT_EQ(h.Percentile(0.0), 0);
  EXPECT_EQ(h.Percentile(1.0), 1'000'000'000);
  // Approximate percentile stays within the bucket's ~4.5% resolution.
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.99)), 1e9, 1e9 * 0.05);
  EXPECT_EQ(h.Percentile(-1.0), 0);   // clamped
  Histogram empty;
  EXPECT_EQ(empty.Percentile(0.5), 0);
  EXPECT_EQ(empty.Summary().substr(0, 3), "n=0");
}

TEST(HistogramTest, NegativeClampedToZero) {
  Histogram h;
  h.Add(-5);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(NetworkStatsTest, RenderSummarizes) {
  NetworkStats stats;
  Message m;
  m.from = 0;
  m.to = 1;
  m.payload = Ack{TxnId{0, 1}};
  stats.RecordSend(m, Millis(5), 60);
  stats.RecordDeliver(m);
  stats.RecordDrop(DropCause::kPartition);
  std::string out = stats.Render();
  EXPECT_NE(out.find("sent=1"), std::string::npos);
  EXPECT_NE(out.find("delivered=1"), std::string::npos);
  EXPECT_NE(out.find("dropped=1"), std::string::npos);
  EXPECT_NE(out.find("Ack=1"), std::string::npos);
  EXPECT_EQ(stats.per_site_delivered.Get(1), 1u);
}

TEST(NetworkStatsTest, RenderListsPerSiteDeliveriesInSiteOrder) {
  NetworkStats stats;
  // Deliver in scrambled site order; the render must not depend on
  // unordered_map iteration order.
  for (SiteId to : {SiteId{7}, SiteId{2}, kNameServerId, SiteId{5},
                    SiteId{2}}) {
    Message m;
    m.from = 0;
    m.to = to;
    m.payload = Ack{TxnId{0, 1}};
    stats.RecordSend(m, Millis(1), 60);
    stats.RecordDeliver(m);
  }
  std::string out = stats.Render();
  size_t line = out.find("per-site delivered:");
  ASSERT_NE(line, std::string::npos);
  std::string tail = out.substr(line);
  tail = tail.substr(0, tail.find('\n'));
  EXPECT_EQ(tail, "per-site delivered: s2=2 s5=1 s7=1 ns=1");
  size_t s2 = tail.find("s2="), s5 = tail.find("s5="), s7 = tail.find("s7=");
  EXPECT_LT(s2, s5);
  EXPECT_LT(s5, s7);
}

TEST(TraceLogTest, CapacityBounded) {
  TraceLog log;
  log.set_enabled(true);
  log.set_capacity(10);
  for (int i = 0; i < 100; ++i) {
    log.Record(i, TraceCategory::kGeneral, 0, "e" + std::to_string(i));
  }
  EXPECT_LE(log.events().size(), 10u);
  // The newest events survive.
  EXPECT_EQ(log.events().back().text, "e99");
}

TEST(TraceLogTest, CategoryFilteredRender) {
  TraceLog log;
  log.set_enabled(true);
  log.Record(1, TraceCategory::kNet, 0, "netline");
  log.Record(2, TraceCategory::kTxn, 1, "txnline");
  std::string net_only = log.Render(TraceCategory::kNet);
  EXPECT_NE(net_only.find("netline"), std::string::npos);
  EXPECT_EQ(net_only.find("txnline"), std::string::npos);
}

}  // namespace
}  // namespace rainbow
