#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/rng.h"
#include "core/system.h"
#include "net/network.h"
#include "net/rpc.h"
#include "sim/simulator.h"
#include "workload/workload.h"

namespace rainbow {
namespace {

// ---------------------------------------------------------------------------
// Backoff policy
// ---------------------------------------------------------------------------

TEST(RpcPolicyTest, BackoffIsCappedExponential) {
  Rng rng(1);
  RpcPolicy p;
  p.backoff_base = Millis(2);
  p.backoff_cap = Millis(20);
  p.jitter = 0;  // deterministic
  EXPECT_EQ(RetryBackoffDelay(p, 1, rng), Millis(2));
  EXPECT_EQ(RetryBackoffDelay(p, 2, rng), Millis(4));
  EXPECT_EQ(RetryBackoffDelay(p, 3, rng), Millis(8));
  EXPECT_EQ(RetryBackoffDelay(p, 4, rng), Millis(16));
  EXPECT_EQ(RetryBackoffDelay(p, 5, rng), Millis(20));  // capped
  EXPECT_EQ(RetryBackoffDelay(p, 50, rng), Millis(20));
}

TEST(RpcPolicyTest, JitterStaysWithinBounds) {
  Rng rng(7);
  RpcPolicy p;
  p.backoff_base = Millis(8);
  p.backoff_cap = Millis(8);
  p.jitter = 0.25;
  for (int i = 0; i < 200; ++i) {
    SimTime d = RetryBackoffDelay(p, 3, rng);
    EXPECT_GE(d, Millis(6));
    EXPECT_LE(d, Millis(10));
  }
}

// ---------------------------------------------------------------------------
// Endpoint behaviour on a two-node network
// ---------------------------------------------------------------------------

/// A client endpoint at site 0 and an echo server at site 1 with a
/// fixed, deterministic one-way delay.
struct RpcHarness {
  Simulator sim;
  std::unique_ptr<Network> net;
  std::unique_ptr<RpcEndpoint> client;
  std::unique_ptr<RpcEndpoint> server;
  int server_requests = 0;
  int late_replies = 0;

  explicit RpcHarness(SimTime one_way) {
    LatencyConfig lat;
    lat.distribution = LatencyDistribution::kFixed;
    lat.mean = one_way;
    lat.min = 0;
    lat.per_kb = 0;
    net = std::make_unique<Network>(&sim, lat, Rng(99), nullptr);
    client = std::make_unique<RpcEndpoint>(&sim, net.get(), 0, 1);
    server = std::make_unique<RpcEndpoint>(&sim, net.get(), 1, 2);
    client->set_late_reply_handler(
        [this](const Message&) { ++late_replies; });
    net->RegisterHandler(0, [this](const Message& m) { client->Accept(m); });
    net->RegisterHandler(1, [this](const Message& m) {
      RpcDelivery d = server->Accept(m);
      if (d.consumed) return;
      ++server_requests;
      server->Reply(d.ctx, Ack{std::get<AbortRequest>(m.payload).txn});
    });
  }
};

TEST(RpcEndpointTest, CallCompletesWithReply) {
  RpcHarness h(Millis(2));
  RpcPolicy policy;
  int callbacks = 0;
  h.client->Call(1, AbortRequest{TxnId{0, 7}}, policy,
                 [&](Result<Payload> r) {
                   ++callbacks;
                   ASSERT_TRUE(r.ok());
                   EXPECT_EQ(std::get<Ack>(*r).txn, (TxnId{0, 7}));
                 });
  h.sim.RunToQuiescence();
  EXPECT_EQ(callbacks, 1);
  EXPECT_EQ(h.server_requests, 1);
  EXPECT_EQ(h.net->stats().rpc_calls, 1u);
  EXPECT_EQ(h.net->stats().rpc_attempts, 1u);
  EXPECT_EQ(h.net->stats().rpc_retries, 0u);
  EXPECT_EQ(h.net->stats().rpc_latency.count(), 1u);
  EXPECT_EQ(h.client->pending_calls(), 0u);
}

TEST(RpcEndpointTest, SlowNetworkForcesRetriesButOneCallbackAndOneService) {
  // One-way delay (30ms) far exceeds the per-attempt timeout (10ms):
  // every attempt "times out" yet eventually arrives. The server must
  // serve the request once (duplicates suppressed, cached reply
  // resent), and the client must see exactly one callback; the surplus
  // cached replies surface as late replies and are dropped.
  RpcHarness h(Millis(30));
  RpcPolicy policy;
  policy.timeout = Millis(10);
  policy.max_attempts = 0;  // retry until the reply lands
  policy.backoff_base = Millis(2);
  policy.jitter = 0;
  int callbacks = 0;
  h.client->Call(1, AbortRequest{TxnId{1, 3}}, policy,
                 [&](Result<Payload> r) {
                   ++callbacks;
                   EXPECT_TRUE(r.ok());
                 });
  h.sim.RunToQuiescence();
  EXPECT_EQ(callbacks, 1);
  EXPECT_EQ(h.server_requests, 1) << "duplicate requests reached the app";
  const NetworkStats& st = h.net->stats();
  EXPECT_GT(st.rpc_retries, 0u);
  EXPECT_GT(st.rpc_timeouts, 0u);
  EXPECT_GT(st.rpc_duplicates_suppressed, 0u);
  EXPECT_GT(h.late_replies, 0) << "cached resends should arrive late";
  EXPECT_EQ(st.rpc_failures, 0u);
  EXPECT_EQ(h.client->pending_calls(), 0u);
}

TEST(RpcEndpointTest, TerminalFailureAfterMaxAttempts) {
  RpcHarness h(Millis(2));
  h.net->SetSiteUp(1, false);  // server unreachable: every attempt is lost
  RpcPolicy policy;
  policy.timeout = Millis(5);
  policy.max_attempts = 3;
  policy.jitter = 0;
  std::optional<Status> failure;
  h.client->Call(1, AbortRequest{TxnId{0, 1}}, policy,
                 [&](Result<Payload> r) {
                   ASSERT_FALSE(r.ok());
                   failure = r.status();
                 });
  h.sim.RunToQuiescence();
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(h.net->stats().rpc_attempts, 3u);
  EXPECT_EQ(h.net->stats().rpc_failures, 1u);
  EXPECT_EQ(h.client->pending_calls(), 0u);
}

TEST(RpcEndpointTest, CancelSuppressesCallbackAndLateReplyIsObserved) {
  RpcHarness h(Millis(2));
  RpcPolicy policy;
  int callbacks = 0;
  uint64_t id = h.client->Call(1, AbortRequest{TxnId{0, 9}}, policy,
                               [&](Result<Payload>) { ++callbacks; });
  EXPECT_TRUE(h.client->Cancel(id));
  EXPECT_FALSE(h.client->Cancel(id));  // idempotent
  h.sim.RunToQuiescence();
  EXPECT_EQ(callbacks, 0);
  // The server still answered; the reply of the cancelled call reaches
  // the late-reply observer instead of a callback.
  EXPECT_EQ(h.server_requests, 1);
  EXPECT_EQ(h.late_replies, 1);
}

TEST(RpcEndpointTest, ResetDropsAllPendingCalls) {
  RpcHarness h(Millis(2));
  RpcPolicy policy;
  int callbacks = 0;
  for (int i = 0; i < 4; ++i) {
    h.client->Call(1, AbortRequest{TxnId{0, static_cast<uint64_t>(i)}},
                   policy, [&](Result<Payload>) { ++callbacks; });
  }
  EXPECT_EQ(h.client->pending_calls(), 4u);
  h.client->Reset();  // crash semantics
  EXPECT_EQ(h.client->pending_calls(), 0u);
  h.sim.RunToQuiescence();
  EXPECT_EQ(callbacks, 0);
}

// ---------------------------------------------------------------------------
// Duplicate-window rotation (floor eviction)
// ---------------------------------------------------------------------------

Message ForgedRequest(SiteId from, SiteId to, uint64_t rpc_id) {
  Message m;
  m.from = from;
  m.to = to;
  m.rpc_id = rpc_id;
  m.payload = AbortRequest{TxnId{from, rpc_id}};
  return m;
}

TEST(RpcEndpointTest, StaleIdBelowFloorIsReadmittedNotSwallowed) {
  // Regression: once the per-sender window rotates past an id, a
  // retransmission of that id used to be suppressed with no cached
  // reply to resend — the caller (possibly a retry-forever decision
  // query) starved silently. It must be re-admitted as a fresh request.
  RpcHarness h(Millis(2));

  RpcDelivery first = h.server->Accept(ForgedRequest(0, 1, 1));
  ASSERT_FALSE(first.consumed);
  ASSERT_TRUE(first.ctx.valid());
  h.server->Reply(first.ctx, Ack{TxnId{0, 1}});

  // While the id is still in the window, a duplicate is suppressed and
  // the cached reply is resent.
  RpcDelivery dup = h.server->Accept(ForgedRequest(0, 1, 1));
  EXPECT_TRUE(dup.consumed);
  EXPECT_FALSE(dup.ctx.valid());
  EXPECT_EQ(h.net->stats().rpc_duplicates_suppressed, 1u);
  EXPECT_EQ(h.net->stats().rpc_stale_readmitted, 0u);

  // Rotate the window far past id 1 (capacity is 256 entries).
  for (uint64_t id = 1000; id < 1400; ++id) {
    RpcDelivery d = h.server->Accept(ForgedRequest(0, 1, id));
    ASSERT_FALSE(d.consumed);
  }

  // The same retransmission now falls below the floor: it must surface
  // to the application again instead of vanishing.
  RpcDelivery stale = h.server->Accept(ForgedRequest(0, 1, 1));
  EXPECT_FALSE(stale.consumed) << "stale retransmission was swallowed";
  ASSERT_TRUE(stale.ctx.valid());
  EXPECT_EQ(h.net->stats().rpc_stale_readmitted, 1u);
  h.server->Reply(stale.ctx, Ack{TxnId{0, 1}});

  // Windows are per sender: another sender's id 1 is simply fresh.
  RpcDelivery other = h.server->Accept(ForgedRequest(2, 1, 1));
  EXPECT_FALSE(other.consumed);
  EXPECT_EQ(h.net->stats().rpc_stale_readmitted, 1u);

  h.sim.RunToQuiescence();  // flush the replies sent above
}

TEST(RpcEndpointTest, RetryForeverCallSurvivesWindowRotation) {
  // End to end: the reply to call #1 is lost, and before the client's
  // retransmission lands the server's window rotates past the call's
  // id. With silent suppression the client would retransmit forever;
  // re-admission lets the exchange complete.
  RpcHarness h(Millis(2));
  RpcPolicy policy;
  policy.timeout = Millis(30);
  policy.max_attempts = 0;  // retry forever
  policy.backoff_base = Millis(2);
  policy.jitter = 0;

  int callbacks = 0;
  h.client->Call(1, AbortRequest{TxnId{0, 5}}, policy,
                 [&](Result<Payload> r) {
                   ++callbacks;
                   EXPECT_TRUE(r.ok());
                 });
  // Take the client down around the reply's delivery so only the reply
  // leg is lost (request out at 0ms, reply in flight 2ms..4ms).
  h.sim.After(Millis(1), [&] { h.net->SetSiteUp(0, false); });
  h.sim.After(Millis(6), [&] { h.net->SetSiteUp(0, true); });
  // Before the ~30ms retransmission, hammer the server with enough
  // other traffic from the same sender to rotate its window.
  h.sim.After(Millis(10), [&] {
    for (uint64_t id = 10000; id < 10400; ++id) {
      RpcDelivery d = h.server->Accept(ForgedRequest(0, 1, id));
      ASSERT_FALSE(d.consumed);
      h.server->Reply(d.ctx, Ack{TxnId{0, id}});
    }
  });

  h.sim.RunUntil(Seconds(2));
  EXPECT_EQ(callbacks, 1) << "retry-forever call starved after rotation";
  EXPECT_GT(h.net->stats().rpc_stale_readmitted, 0u);
  EXPECT_EQ(h.client->pending_calls(), 0u);
}

// ---------------------------------------------------------------------------
// End to end: the full protocol stack over a lossy network
// ---------------------------------------------------------------------------

TEST(RpcLossyNetworkTest, TransactionsCompleteDespiteLoss) {
  // 5% of messages vanish. The RPC layer's retransmissions and
  // duplicate suppression must carry a quorum-consensus / 2PL workload
  // to completion: every transaction either commits or aborts cleanly.
  SystemConfig cfg;
  cfg.seed = 4242;
  cfg.num_sites = 4;
  cfg.message_loss = 0.05;
  cfg.protocols.rcp = RcpKind::kQuorumConsensus;
  cfg.protocols.cc = CcKind::kTwoPhaseLocking;
  cfg.AddUniformItems(40, 100, 3);
  auto sys = RainbowSystem::Create(cfg);
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;

  WorkloadConfig wl;
  wl.seed = 17;
  wl.num_txns = 200;
  wl.mpl = 6;
  WorkloadGenerator wlg(&s, wl);
  bool done = false;
  wlg.Run([&] { done = true; });
  s.RunFor(Seconds(60));
  EXPECT_TRUE(done) << "workload did not drain under loss";
  s.RunFor(Seconds(3));

  const ProgressMonitor& mon = s.monitor();
  uint64_t finished = mon.committed() + mon.aborted_total();
  EXPECT_GE(finished, wlg.submitted())
      << "transactions vanished instead of committing or aborting";
  EXPECT_GE(static_cast<double>(finished), 0.99 * 200.0);
  EXPECT_GT(mon.committed(), 100u);
  EXPECT_TRUE(s.CheckReplicaConsistency(false).ok());

  // The loss really exercised the retry machinery.
  const NetworkStats& st = s.net().stats();
  EXPECT_GT(st.dropped[static_cast<size_t>(DropCause::kRandomLoss)], 0u);
  EXPECT_GT(st.rpc_retries, 0u);
  EXPECT_GT(st.rpc_duplicates_suppressed, 0u);

  // And the counters are rendered for operators.
  std::string stats = mon.RenderStatistics(st, Seconds(60));
  EXPECT_NE(stats.find("rpc retries"), std::string::npos);
  EXPECT_NE(stats.find("rpc duplicates suppressed"), std::string::npos);
  std::string net_render = st.Render();
  EXPECT_NE(net_render.find("rpc:"), std::string::npos);
  EXPECT_NE(net_render.find("dup_suppressed="), std::string::npos);
}

}  // namespace
}  // namespace rainbow
