// End-to-end tests for the sharded simulation kernel: a whole-system
// smoke at sim_shards=4, the headline same-seed trace gate — canonical
// traces, session logs, histories and network totals must be
// byte-identical at sim_shards 1, 2 and 4 — and a calm-profile nemesis
// sweep with the protocol-invariant checker as oracle.

#include <gtest/gtest.h>

#include <string>

#include "core/system.h"
#include "fault/nemesis.h"
#include "stats/progress_monitor.h"
#include "stats/trace_export.h"
#include "verify/history.h"
#include "workload/workload.h"

namespace rainbow {
namespace {

SystemConfig ShardTopology(uint32_t shards, uint64_t seed) {
  SystemConfig cfg;
  cfg.seed = seed;
  cfg.num_sites = 8;
  cfg.sim_shards = shards;
  cfg.enable_trace = true;
  cfg.trace_enabled = true;
  cfg.trace_detail = TraceDetail::kFull;
  cfg.record_history = true;
  cfg.AddUniformItems(24, 100, 3);
  return cfg;
}

TEST(ShardedSystemTest, SingleTransactionCommitsAtFourShards) {
  auto sys = RainbowSystem::Create(ShardTopology(4, 77));
  ASSERT_TRUE(sys.ok()) << sys.status();
  RainbowSystem& s = **sys;
  ASSERT_NE(s.sharded(), nullptr);

  TxnProgram p;
  p.ops = {Op::Read(0), Op::Write(1, 55)};
  TxnOutcome outcome;
  bool done = false;
  ASSERT_TRUE(s.Submit(5, p, [&](const TxnOutcome& o) {
                 outcome = o;
                 done = true;
               }).ok());
  s.RunToQuiescence(1'000'000);
  ASSERT_TRUE(done);
  EXPECT_TRUE(outcome.committed) << outcome.ToString();
  auto latest = s.LatestCommitted(1);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->value, 55);
  EXPECT_GT(s.sharded()->windows_run(), 0u);
  EXPECT_GT(s.sharded()->cross_shard_posts(), 0u);
}

/// Everything observable from one run, in canonical form.
struct RunArtifacts {
  std::string trace;
  std::string records;
  std::string session_log;
  std::string history;
  uint64_t submitted = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t net_sent = 0;
  uint64_t delivered = 0;
  uint64_t bytes = 0;
  SimTime end_time = 0;
};

RunArtifacts RunOnce(uint32_t shards, uint64_t seed) {
  auto sys = RainbowSystem::Create(ShardTopology(shards, seed));
  EXPECT_TRUE(sys.ok()) << sys.status();
  RainbowSystem& s = **sys;
  s.set_keep_outcomes(true);

  WorkloadConfig wl;
  wl.seed = seed ^ 0x5eed;
  wl.num_txns = 96;
  wl.mpl = 8;
  wl.max_retries = 2;
  // Exercise the scan verb (page-engine leaf-chain reads) under the
  // byte-identical gate too.
  wl.scan_fraction = 0.15;
  wl.scan_length = 4;
  // Identical client model at every shard count (forced anyway for
  // shards > 1; set explicitly so the 1-shard baseline matches).
  wl.per_site_clients = true;
  WorkloadGenerator wlg(&s, wl);
  wlg.Run();
  while (!wlg.finished() && s.sim().Now() < Seconds(30)) {
    s.RunFor(Millis(50));
    if (s.Idle() && !wlg.finished()) break;
  }
  s.RunFor(Millis(500));
  EXPECT_TRUE(wlg.finished());

  // Canonicalize copies on both sides: the single kernel keeps raw
  // execution order, the sharded accessors already merge — sorting both
  // by (time, site) makes the comparison mode-independent.
  RunArtifacts a;
  TraceLog t = s.trace();
  t.CanonicalSort();
  a.trace = t.Render();
  TraceCollector c = s.collector();
  c.CanonicalSort();
  a.records = ProgressMonitor::RenderExecutionWindow(c, 0);
  ProgressMonitor m = s.monitor();
  m.CanonicalizeOutcomes();
  a.session_log = m.RenderSessionLog();
  a.submitted = m.submitted();
  a.committed = m.committed();
  a.aborted = m.aborted_total();
  HistoryRecorder h = s.history();
  h.CanonicalSort();
  a.history = RenderHistory(h.transactions());
  a.net_sent = s.net().stats().network_sent();
  a.delivered = s.net().stats().delivered;
  a.bytes = s.net().stats().bytes;
  a.end_time = s.sim().Now();
  EXPECT_GT(a.committed, 0u);
  return a;
}

/// The headline gate: same seed => byte-identical canonical artifacts
/// at any shard count (the programmatic `diff` of the 1-shard and
/// 4-shard trace dumps).
TEST(ShardedDeterminismTest, SameSeedTraceDiffAcrossShardCounts) {
  const uint64_t kSeed = 20260808;
  RunArtifacts base = RunOnce(1, kSeed);
  for (uint32_t shards : {2u, 4u}) {
    SCOPED_TRACE("sim_shards=" + std::to_string(shards));
    RunArtifacts r = RunOnce(shards, kSeed);
    EXPECT_EQ(base.submitted, r.submitted);
    EXPECT_EQ(base.committed, r.committed);
    EXPECT_EQ(base.aborted, r.aborted);
    EXPECT_EQ(base.net_sent, r.net_sent);
    EXPECT_EQ(base.delivered, r.delivered);
    EXPECT_EQ(base.bytes, r.bytes);
    EXPECT_EQ(base.end_time, r.end_time);
    EXPECT_EQ(base.session_log, r.session_log);
    EXPECT_EQ(base.history, r.history);
    EXPECT_EQ(base.trace, r.trace);
    EXPECT_EQ(base.records, r.records);
  }
}

/// Re-running the same configuration must also be self-deterministic
/// (thread scheduling can not leak into the execution).
TEST(ShardedDeterminismTest, RepeatRunsAreIdenticalAtFourShards) {
  const uint64_t kSeed = 4242;
  RunArtifacts a = RunOnce(4, kSeed);
  RunArtifacts b = RunOnce(4, kSeed);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.session_log, b.session_log);
  EXPECT_EQ(a.net_sent, b.net_sent);
}

/// The library-level gate (usable from examples/CI without gtest):
/// Chrome-trace exports are byte-identical at 1 vs 4 shards.
TEST(ShardedDeterminismTest, ChromeTraceExportInvariantUnderShardCount) {
  SystemConfig cfg = ShardTopology(1, 99);
  WorkloadConfig wl;
  wl.seed = 7;
  wl.num_txns = 40;
  wl.mpl = 4;
  auto diff = ShardCountTraceDiff(cfg, wl, 1, 4);
  ASSERT_TRUE(diff.ok()) << diff.status();
  EXPECT_TRUE(diff->identical) << diff->Describe();
}

/// Nemesis smoke under sharding: five calm-profile schedules at
/// sim_shards=4 with the invariant checker as oracle. Faults flow
/// through the control lane; this keeps the barrier/mailbox machinery
/// honest under crashes, partitions and link overrides.
TEST(ShardedNemesisTest, CalmProfileFiveSeedsCleanAtFourShards) {
  NemesisOptions opts;
  opts.seed = 0xca1f;
  opts.profile = "calm";
  opts.rounds = 5;
  opts.txns = 60;
  opts.mpl = 4;
  opts.shrink = false;
  opts.base_config.sim_shards = 4;
  auto nem = Nemesis::Make(opts);
  ASSERT_TRUE(nem.ok()) << nem.status();
  NemesisResult r = nem->Run();
  EXPECT_FALSE(r.found_violation) << r.report;
  EXPECT_EQ(r.rounds_run, 5u);
}

}  // namespace
}  // namespace rainbow
