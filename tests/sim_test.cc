#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "sim/event_queue.h"
#include "sim/sharded_simulator.h"
#include "sim/simulator.h"

namespace rainbow {
namespace {

TEST(EventQueueTest, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.Schedule(30, [&] { fired.push_back(3); });
  q.Schedule(10, [&] { fired.push_back(1); });
  q.Schedule(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.PopNext().cb();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TieBreakIsFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(100, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.PopNext().cb();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  auto id = q.Schedule(10, [&] { fired = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));  // second cancel is a no-op
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  auto id = q.Schedule(10, [] {});
  q.Schedule(20, [] {});
  q.Cancel(id);
  EXPECT_EQ(q.NextTime(), 20);
}

TEST(EventQueueTest, KeyOrdersWithinSameTime) {
  // (time, key, seq): explicit keys order same-tick events regardless
  // of insertion order; key 0 (plain Schedule) fires first; equal keys
  // stay FIFO.
  EventQueue q;
  std::vector<int> fired;
  q.Schedule(10, 7, [&] { fired.push_back(7); });
  q.Schedule(10, 3, [&] { fired.push_back(3); });
  q.Schedule(10, [&] { fired.push_back(0); });
  q.Schedule(10, 3, [&] { fired.push_back(4); });
  q.Schedule(5, 9, [&] { fired.push_back(-1); });  // earlier time wins
  while (!q.empty()) q.PopNext().cb();
  EXPECT_EQ(fired, (std::vector<int>{-1, 0, 3, 4, 7}));
}

TEST(SimulatorTest, ClockAdvances) {
  Simulator sim;
  SimTime seen = -1;
  sim.After(100, [&] { seen = sim.Now(); });
  EXPECT_EQ(sim.Now(), 0);
  sim.RunToQuiescence();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.Now(), 100);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int count = 0;
  sim.After(10, [&] { ++count; });
  sim.After(20, [&] { ++count; });
  sim.After(30, [&] { ++count; });
  sim.RunUntil(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.Now(), 20);
  sim.RunToQuiescence();
  EXPECT_EQ(count, 3);
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.After(10, [&] {
    times.push_back(sim.Now());
    sim.After(5, [&] { times.push_back(sim.Now()); });
  });
  sim.RunToQuiescence();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(SimulatorTest, TimerHandleCancel) {
  Simulator sim;
  bool fired = false;
  TimerHandle h = sim.After(10, [&] { fired = true; });
  EXPECT_TRUE(h.Cancel());
  sim.RunToQuiescence();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, DefaultTimerHandleIsInert) {
  TimerHandle h;
  EXPECT_FALSE(h.valid());
  EXPECT_FALSE(h.Cancel());
}

TEST(SimulatorTest, QuiescenceCap) {
  Simulator sim;
  // Self-perpetuating event chain: the cap must stop it.
  std::function<void()> loop = [&] { sim.After(1, loop); };
  sim.After(1, loop);
  size_t executed = sim.RunToQuiescence(100);
  EXPECT_EQ(executed, 100u);
}

TEST(SimulatorTest, RunUntilAdvancesClockWithEventsRemaining) {
  // Pin: RunUntil(t) lands the clock exactly on t even when later
  // events remain pending (they stay queued for the next run).
  Simulator sim;
  int count = 0;
  sim.After(10, [&] { ++count; });
  sim.After(100, [&] { ++count; });
  sim.RunUntil(50);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.Now(), 50);
  EXPECT_FALSE(sim.idle());
  sim.RunToQuiescence();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.Now(), 100);
}

TEST(ShardedSimulatorTest, ShardOfSitePartitioner) {
  EXPECT_EQ(ShardedSimulator::ShardOfSite(0, 1), 0u);
  EXPECT_EQ(ShardedSimulator::ShardOfSite(7, 1), 0u);
  EXPECT_EQ(ShardedSimulator::ShardOfSite(0, 4), 0u);
  EXPECT_EQ(ShardedSimulator::ShardOfSite(5, 4), 1u);
  EXPECT_EQ(ShardedSimulator::ShardOfSite(6, 4), 2u);
  // The name server (and any out-of-band id) is pinned to shard 0.
  EXPECT_EQ(ShardedSimulator::ShardOfSite(kNameServerId, 4), 0u);
}

TEST(ShardedSimulatorTest, RunsShardEventsAndAlignsClocks) {
  ShardedSimulator s(2);
  // Each vector is written only by its own shard's worker.
  std::vector<SimTime> fired0, fired1;
  s.shard(0).After(10, [&] { fired0.push_back(s.shard(0).Now()); });
  s.shard(0).After(30, [&] { fired0.push_back(s.shard(0).Now()); });
  s.shard(1).After(20, [&] { fired1.push_back(s.shard(1).Now()); });
  s.RunUntil(100);
  EXPECT_EQ(fired0, (std::vector<SimTime>{10, 30}));
  EXPECT_EQ(fired1, (std::vector<SimTime>{20}));
  EXPECT_EQ(s.Now(), 100);
  EXPECT_EQ(s.shard(0).Now(), 100);
  EXPECT_EQ(s.shard(1).Now(), 100);
  EXPECT_TRUE(s.idle());
  EXPECT_EQ(s.executed_events(), 3u);
}

TEST(ShardedSimulatorTest, CrossShardPostDeliversAtRequestedTime) {
  ShardedSimulator s(2);
  s.set_lookahead_provider([] { return SimTime{5}; });
  SimTime seen = -1;
  s.shard(0).After(10, [&] {
    // Conservative rule: the delivery time is >= send time + lookahead.
    s.PostToShard(1, s.shard(0).Now() + 5, /*key=*/1,
                  [&] { seen = s.shard(1).Now(); });
  });
  s.RunUntil(100);
  EXPECT_EQ(seen, 15);
  EXPECT_EQ(s.cross_shard_posts(), 1u);
  EXPECT_GE(s.windows_run(), 2u);
}

TEST(ShardedSimulatorTest, ControlEventsRunAtBarriers) {
  ShardedSimulator s(4);
  s.set_lookahead_provider([] { return SimTime{10}; });
  std::vector<SimTime> control_times;
  SimTime shard_seen = -1;
  s.control().At(25, [&] { control_times.push_back(s.control().Now()); });
  s.shard(2).After(25, [&] { shard_seen = s.shard(2).Now(); });
  s.control().At(60, [&] { control_times.push_back(s.control().Now()); });
  s.RunUntil(80);
  EXPECT_EQ(control_times, (std::vector<SimTime>{25, 60}));
  EXPECT_EQ(shard_seen, 25);
  EXPECT_EQ(s.Now(), 80);
}

TEST(ShardedSimulatorTest, RunToQuiescenceDrainsChains) {
  ShardedSimulator s(2);
  s.set_lookahead_provider([] { return SimTime{3}; });
  // Ping-pong between shards via cross-shard posts.
  int hops = 0;
  std::function<void(uint32_t)> hop = [&](uint32_t k) {
    ++hops;
    if (hops >= 10) return;
    uint32_t next = 1 - k;
    s.PostToShard(next, s.shard(k).Now() + 3, /*key=*/1,
                  [&hop, next] { hop(next); });
  };
  s.shard(0).After(1, [&] { hop(0); });
  s.RunToQuiescence();
  EXPECT_EQ(hops, 10);
  EXPECT_TRUE(s.idle());
}

}  // namespace
}  // namespace rainbow
