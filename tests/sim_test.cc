#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace rainbow {
namespace {

TEST(EventQueueTest, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.Schedule(30, [&] { fired.push_back(3); });
  q.Schedule(10, [&] { fired.push_back(1); });
  q.Schedule(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.PopNext().cb();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TieBreakIsFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(100, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.PopNext().cb();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  auto id = q.Schedule(10, [&] { fired = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));  // second cancel is a no-op
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  auto id = q.Schedule(10, [] {});
  q.Schedule(20, [] {});
  q.Cancel(id);
  EXPECT_EQ(q.NextTime(), 20);
}

TEST(SimulatorTest, ClockAdvances) {
  Simulator sim;
  SimTime seen = -1;
  sim.After(100, [&] { seen = sim.Now(); });
  EXPECT_EQ(sim.Now(), 0);
  sim.RunToQuiescence();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.Now(), 100);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int count = 0;
  sim.After(10, [&] { ++count; });
  sim.After(20, [&] { ++count; });
  sim.After(30, [&] { ++count; });
  sim.RunUntil(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.Now(), 20);
  sim.RunToQuiescence();
  EXPECT_EQ(count, 3);
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.After(10, [&] {
    times.push_back(sim.Now());
    sim.After(5, [&] { times.push_back(sim.Now()); });
  });
  sim.RunToQuiescence();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(SimulatorTest, TimerHandleCancel) {
  Simulator sim;
  bool fired = false;
  TimerHandle h = sim.After(10, [&] { fired = true; });
  EXPECT_TRUE(h.Cancel());
  sim.RunToQuiescence();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, DefaultTimerHandleIsInert) {
  TimerHandle h;
  EXPECT_FALSE(h.valid());
  EXPECT_FALSE(h.Cancel());
}

TEST(SimulatorTest, QuiescenceCap) {
  Simulator sim;
  // Self-perpetuating event chain: the cap must stop it.
  std::function<void()> loop = [&] { sim.After(1, loop); };
  sim.After(1, loop);
  size_t executed = sim.RunToQuiescence(100);
  EXPECT_EQ(executed, 100u);
}

}  // namespace
}  // namespace rainbow
