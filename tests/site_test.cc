// Message-level tests of the Site actor: protocol edge paths that the
// whole-system tests only hit probabilistically. A "probe" handler is
// registered on the shared network under an unused site id so tests can
// inject raw protocol messages and capture the replies.

#include <gtest/gtest.h>

#include "core/system.h"
#include "workload/workload.h"

namespace rainbow {
namespace {

constexpr SiteId kProbe = 90;

class SiteTest : public ::testing::Test {
 protected:
  void Build(SystemConfig cfg) {
    auto sys = RainbowSystem::Create(std::move(cfg));
    ASSERT_TRUE(sys.ok()) << sys.status();
    sys_ = std::move(sys).value();
    sys_->net().RegisterHandler(
        kProbe, [this](const Message& m) { probe_inbox_.push_back(m); });
  }

  static SystemConfig BaseConfig() {
    SystemConfig cfg;
    cfg.seed = 5;
    cfg.num_sites = 3;
    cfg.latency.distribution = LatencyDistribution::kFixed;
    cfg.latency.mean = Millis(1);
    cfg.latency.per_kb = 0;
    cfg.AddFullyReplicatedItems(10, 100);
    return cfg;
  }

  /// Messages of one kind received by the probe.
  std::vector<Message> ProbeReceived(MessageKind kind) const {
    std::vector<Message> out;
    for (const Message& m : probe_inbox_) {
      if (m.kind() == kind) out.push_back(m);
    }
    return out;
  }

  std::unique_ptr<RainbowSystem> sys_;
  std::vector<Message> probe_inbox_;
};

TEST_F(SiteTest, DuplicateDecisionIsAckedIdempotently) {
  Build(BaseConfig());
  // A Decision for a transaction this site never heard of (e.g. a
  // resend after the participant already applied and forgot) must be
  // acked so the coordinator's closer completes.
  sys_->net().Send(kProbe, 1, Decision{TxnId{0, 77}, true});
  sys_->RunFor(Millis(10));
  auto acks = ProbeReceived(MessageKind::kAck);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(std::get<Ack>(acks[0].payload).txn, (TxnId{0, 77}));
  // And nothing was applied.
  EXPECT_EQ(sys_->site(1)->store().Get(0)->version, 0u);
}

TEST_F(SiteTest, PresumedAbortForUnknownHomeTxn) {
  Build(BaseConfig());
  // Ask site 0 (as home) about a transaction it has no record of: 2PC
  // presumed abort must answer "known, abort".
  sys_->net().Send(kProbe, 0, DecisionQuery{TxnId{0, 1234}, kProbe});
  sys_->RunFor(Millis(10));
  auto infos = ProbeReceived(MessageKind::kDecisionInfo);
  ASSERT_EQ(infos.size(), 1u);
  const auto& info = std::get<DecisionInfo>(infos[0].payload);
  EXPECT_TRUE(info.known);
  EXPECT_FALSE(info.commit);
}

TEST_F(SiteTest, PeerWithoutRecordAnswersUnknown) {
  Build(BaseConfig());
  // Site 1 is not the home of T9@0 and has no participant state.
  sys_->net().Send(kProbe, 1, DecisionQuery{TxnId{0, 9}, kProbe});
  sys_->RunFor(Millis(10));
  auto infos = ProbeReceived(MessageKind::kDecisionInfo);
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_FALSE(std::get<DecisionInfo>(infos[0].payload).known);
}

TEST_F(SiteTest, StateQueryReportsUnknownForStrangers) {
  Build(BaseConfig());
  sys_->net().Send(kProbe, 2, StateQuery{TxnId{1, 5}, kProbe});
  sys_->RunFor(Millis(10));
  auto replies = ProbeReceived(MessageKind::kStateReply);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(std::get<StateReply>(replies[0].payload).state,
            AcpState::kUnknown);
}

TEST_F(SiteTest, PrepareForUnknownTxnVotesNo) {
  Build(BaseConfig());
  PrepareRequest prep;
  prep.txn = TxnId{0, 55};
  prep.participants = {1, kProbe};
  sys_->net().Send(kProbe, 1, prep);
  sys_->RunFor(Millis(10));
  auto votes = ProbeReceived(MessageKind::kVoteReply);
  ASSERT_EQ(votes.size(), 1u);
  const auto& v = std::get<VoteReply>(votes[0].payload);
  EXPECT_FALSE(v.yes);
  EXPECT_EQ(v.reason, DenyReason::kUnknownTxn);
}

TEST_F(SiteTest, DirectReadRequestServedUnderCc) {
  Build(BaseConfig());
  ReadRequest req;
  req.txn = TxnId{kProbe, 1};
  req.ts = TxnTimestamp{1, kProbe};
  req.item = 3;
  sys_->net().Send(kProbe, 2, req);
  sys_->RunFor(Millis(10));
  auto replies = ProbeReceived(MessageKind::kReadReply);
  ASSERT_EQ(replies.size(), 1u);
  const auto& r = std::get<ReadReply>(replies[0].payload);
  EXPECT_TRUE(r.granted);
  EXPECT_EQ(r.value, 100);
  EXPECT_EQ(r.version, 0u);
  // The probe transaction now holds a read lock at site 2.
  EXPECT_EQ(sys_->site(2)->active_participants(), 1u);
  // An abort request cleans it up.
  sys_->net().Send(kProbe, 2, AbortRequest{req.txn});
  sys_->RunFor(Millis(10));
  EXPECT_EQ(sys_->site(2)->active_participants(), 0u);
}

TEST_F(SiteTest, SchemaCacheOffIssuesLookupPerTransaction) {
  SystemConfig cfg = BaseConfig();
  cfg.protocols.cache_schema = false;
  Build(cfg);
  for (int i = 0; i < 3; ++i) {
    bool committed = false;
    ASSERT_TRUE(sys_->Submit(0, TxnProgram{{Op::Read(0)}, ""},
                             [&](const TxnOutcome& o) {
                               committed = o.committed;
                             })
                    .ok());
    sys_->RunFor(Millis(50));
    ASSERT_TRUE(committed);
  }
  uint64_t lookups_off = sys_->name_server().lookups_served();
  EXPECT_EQ(lookups_off, 3u);  // one per transaction

  // Same workload with caching: one lookup total.
  Build(BaseConfig());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(sys_->Submit(0, TxnProgram{{Op::Read(0)}, ""}, nullptr).ok());
    sys_->RunFor(Millis(50));
  }
  EXPECT_EQ(sys_->name_server().lookups_served(), 1u);
}

TEST_F(SiteTest, BroadcastReadsContactEveryCopy) {
  SystemConfig cfg = BaseConfig();
  cfg.protocols.rcp_broadcast = true;
  Build(cfg);
  bool committed = false;
  ASSERT_TRUE(sys_->Submit(0, TxnProgram{{Op::Read(0)}, ""},
                           [&](const TxnOutcome& o) {
                             committed = o.committed;
                           })
                  .ok());
  sys_->RunFor(Millis(100));
  ASSERT_TRUE(committed);
  // All three copies were asked (vs 2 in subset mode).
  EXPECT_EQ(sys_->net().stats().by_kind[static_cast<size_t>(
                MessageKind::kReadRequest)],
            3u);
  // Every replica that granted was included in the commit and released.
  for (SiteId s = 0; s < 3; ++s) {
    EXPECT_EQ(sys_->site(s)->active_participants(), 0u);
  }
}

TEST_F(SiteTest, WoundWaitAbortsRemoteYoungerTransaction) {
  SystemConfig cfg = BaseConfig();
  cfg.protocols.deadlock = DeadlockPolicy::kWoundWait;
  Build(cfg);
  RainbowSystem& s = *sys_;

  // The younger transaction (submitted second but from another site —
  // timestamps order by submission time) grabs the lock first by virtue
  // of a faster local path; then the older one wounds it.
  TxnOutcome young_outcome;
  bool young_done = false, old_done = false;
  // Young txn homed at site 1, writes item 0 (copies at 0,1,2; its
  // quorum prefers {1,0}).
  // The young transaction writes item 0 early and then keeps working
  // (two more reads), so it still holds the exclusive lock — and is not
  // yet prepared — when the older transaction's prewrite arrives.
  s.sim().At(Micros(10), [&] {
    ASSERT_TRUE(s.Submit(1,
                         TxnProgram{{Op::Write(0, 1), Op::Read(7), Op::Read(8)},
                                    "young"},
                         [&](const TxnOutcome& o) {
                           young_outcome = o;
                           young_done = true;
                         })
                    .ok());
  });
  // Wait — timestamps: earlier submission = older. Submit the OLD one
  // first at site 2, but delay its lock acquisition by giving it a
  // longer program so the young one grabs the item lock first.
  TxnOutcome old_outcome;
  s.sim().At(Micros(1), [&] {
    ASSERT_TRUE(s.Submit(2,
                         TxnProgram{{Op::Read(5), Op::Read(6), Op::Write(0, 2)},
                                    "old"},
                         [&](const TxnOutcome& o) {
                           old_outcome = o;
                           old_done = true;
                         })
                    .ok());
  });
  s.RunFor(Seconds(2));
  ASSERT_TRUE(young_done);
  ASSERT_TRUE(old_done);
  // The older transaction must win under wound-wait; the younger one is
  // wounded at the shared replica and aborts globally with a CCP cause.
  EXPECT_TRUE(old_outcome.committed) << old_outcome.ToString();
  EXPECT_FALSE(young_outcome.committed) << young_outcome.ToString();
  EXPECT_EQ(young_outcome.abort_cause, AbortCause::kCcp);
  // Nothing leaks.
  for (SiteId id = 0; id < 3; ++id) {
    EXPECT_EQ(s.site(id)->active_participants(), 0u);
  }
  auto latest = s.LatestCommitted(0);
  EXPECT_EQ(latest->value, 2);
}

TEST_F(SiteTest, SuspicionExpiresAfterTtl) {
  SystemConfig cfg = BaseConfig();
  cfg.protocols.suspicion_ttl = Millis(50);
  Build(cfg);
  sys_->site(0)->Suspect(2);
  EXPECT_TRUE(sys_->site(0)->IsSuspected(2));
  sys_->RunFor(Millis(60));
  EXPECT_FALSE(sys_->site(0)->IsSuspected(2));
}

TEST_F(SiteTest, HearingFromSiteClearsSuspicion) {
  Build(BaseConfig());
  sys_->site(0)->Suspect(2);
  ASSERT_TRUE(sys_->site(0)->IsSuspected(2));
  // Any message from site 2 unsuspects it.
  sys_->net().Send(2, 0, Ack{TxnId{2, 1}});
  sys_->RunFor(Millis(10));
  EXPECT_FALSE(sys_->site(0)->IsSuspected(2));
}

TEST_F(SiteTest, TraceRecordsProtocolFlow) {
  SystemConfig cfg = BaseConfig();
  cfg.enable_trace = true;
  Build(cfg);
  ASSERT_TRUE(
      sys_->Submit(0, TxnProgram{{Op::Increment(1, 5)}, ""}, nullptr).ok());
  sys_->RunFor(Millis(100));
  const TraceLog& trace = sys_->trace();
  EXPECT_GT(trace.CountContaining("arrived"), 0u);
  EXPECT_GT(trace.CountContaining("read quorum"), 0u);
  EXPECT_GT(trace.CountContaining("write quorum"), 0u);
  EXPECT_GT(trace.CountContaining("prepare ->"), 0u);
  EXPECT_GT(trace.CountContaining("voted YES"), 0u);
  EXPECT_GT(trace.CountContaining("decision: COMMIT"), 0u);
  EXPECT_GT(trace.CountContaining("fully acknowledged"), 0u);
  // The rendered trace is non-empty and mentions the txn.
  EXPECT_NE(trace.Render().find("T1@0"), std::string::npos);
}

TEST_F(SiteTest, ReadOwnWriteServedFromBuffer) {
  SystemConfig cfg = BaseConfig();
  cfg.enable_trace = true;
  Build(cfg);
  TxnOutcome outcome;
  bool done = false;
  TxnProgram p;
  p.ops = {Op::Write(4, 1234), Op::Read(4), Op::Increment(4, 1)};
  ASSERT_TRUE(sys_->Submit(0, p, [&](const TxnOutcome& o) {
                     outcome = o;
                     done = true;
                   })
                  .ok());
  sys_->RunFor(Millis(200));
  ASSERT_TRUE(done);
  ASSERT_TRUE(outcome.committed);
  // The read and the increment's read both observed the buffered write.
  ASSERT_EQ(outcome.reads.size(), 2u);
  EXPECT_EQ(outcome.reads[0], 1234);
  EXPECT_EQ(outcome.reads[1], 1234);
  EXPECT_EQ(sys_->LatestCommitted(4)->value, 1235);
  // Only ONE read quorum was ever built (none: both reads were local).
  EXPECT_EQ(sys_->trace().CountContaining("read quorum"), 0u);
}

TEST_F(SiteTest, ReadOnlyOptimizationSkipsPhaseTwo) {
  // Items with single copies on distinct sites: the transaction reads
  // at site 1 and writes at site 2, so site 1 is a read-only
  // participant and site 2 a writing one.
  auto make_cfg = [](bool opt) {
    SystemConfig cfg;
    cfg.seed = 5;
    cfg.num_sites = 3;
    cfg.latency.distribution = LatencyDistribution::kFixed;
    cfg.latency.mean = Millis(1);
    cfg.protocols.readonly_optimization = opt;
    ItemConfig a;
    a.name = "at1";
    a.initial = 10;
    a.copies = {1};
    cfg.items.push_back(a);
    ItemConfig b;
    b.name = "at2";
    b.initial = 20;
    b.copies = {2};
    cfg.items.push_back(b);
    return cfg;
  };

  auto run = [&](bool opt) {
    Build(make_cfg(opt));
    bool committed = false;
    TxnProgram p;
    p.ops = {Op::Read(0), Op::Write(1, 99)};
    EXPECT_TRUE(sys_->Submit(0, p, [&](const TxnOutcome& o) {
                       committed = o.committed;
                     })
                    .ok());
    sys_->RunFor(Millis(200));
    EXPECT_TRUE(committed);
    EXPECT_EQ(sys_->LatestCommitted(1)->value, 99);
    for (SiteId s = 0; s < 3; ++s) {
      EXPECT_EQ(sys_->site(s)->active_participants(), 0u);
    }
    return sys_->net()
        .stats()
        .by_kind[static_cast<size_t>(MessageKind::kDecision)];
  };

  uint64_t decisions_with = run(true);
  uint64_t decisions_without = run(false);
  EXPECT_EQ(decisions_with, 1u);     // only the writer gets the decision
  EXPECT_EQ(decisions_without, 2u);  // both participants do
}

TEST_F(SiteTest, FullyReadOnlyTransactionUnderOptimization) {
  SystemConfig cfg = BaseConfig();
  cfg.protocols.readonly_optimization = true;
  Build(cfg);
  bool committed = false;
  TxnOutcome outcome;
  ASSERT_TRUE(sys_->Submit(0, TxnProgram{{Op::Read(0), Op::Read(1)}, ""},
                           [&](const TxnOutcome& o) {
                             outcome = o;
                             committed = o.committed;
                           })
                  .ok());
  sys_->RunFor(Millis(200));
  ASSERT_TRUE(committed);
  EXPECT_EQ(outcome.reads.size(), 2u);
  // No decisions or acks at all.
  EXPECT_EQ(sys_->net().stats().by_kind[static_cast<size_t>(
                MessageKind::kDecision)],
            0u);
  EXPECT_EQ(
      sys_->net().stats().by_kind[static_cast<size_t>(MessageKind::kAck)],
      0u);
  for (SiteId s = 0; s < 3; ++s) {
    EXPECT_EQ(sys_->site(s)->active_participants(), 0u);
  }
}

TEST_F(SiteTest, EmptyProgramCommitsTrivially) {
  Build(BaseConfig());
  TxnOutcome outcome;
  bool done = false;
  ASSERT_TRUE(sys_->Submit(0, TxnProgram{}, [&](const TxnOutcome& o) {
                     outcome = o;
                     done = true;
                   })
                  .ok());
  sys_->RunFor(Millis(10));
  ASSERT_TRUE(done);
  EXPECT_TRUE(outcome.committed);
  EXPECT_EQ(outcome.round_trips, 0u);
}

TEST_F(SiteTest, UnknownItemAborts) {
  Build(BaseConfig());
  TxnOutcome outcome;
  bool done = false;
  ASSERT_TRUE(sys_->Submit(0, TxnProgram{{Op::Read(999)}, ""},
                           [&](const TxnOutcome& o) {
                             outcome = o;
                             done = true;
                           })
                  .ok());
  sys_->RunFor(Millis(100));
  ASSERT_TRUE(done);
  EXPECT_FALSE(outcome.committed);
  EXPECT_EQ(outcome.abort_cause, AbortCause::kOther);
}

}  // namespace
}  // namespace rainbow
