#include <gtest/gtest.h>

#include "stats/progress_monitor.h"

namespace rainbow {
namespace {

TxnOutcome Outcome(uint64_t seq, bool committed, AbortCause cause,
                   SimTime submitted, SimTime finished, SiteId home = 0) {
  TxnOutcome o;
  o.id = TxnId{home, seq};
  o.committed = committed;
  o.abort_cause = committed ? AbortCause::kNone : cause;
  o.submitted_at = submitted;
  o.finished_at = finished;
  o.home = home;
  o.num_ops = 3;
  o.round_trips = 5;
  return o;
}

TEST(ProgressMonitorTest, CountsByOutcome) {
  ProgressMonitor pm;
  pm.OnSubmit(0, 0);
  pm.OnSubmit(1, 0);
  pm.OnSubmit(0, 0);
  pm.OnComplete(Outcome(1, true, AbortCause::kNone, 0, 1000));
  pm.OnComplete(Outcome(2, false, AbortCause::kCcp, 0, 500));
  pm.OnComplete(Outcome(3, false, AbortCause::kRcp, 0, 700));
  EXPECT_EQ(pm.submitted(), 3u);
  EXPECT_EQ(pm.committed(), 1u);
  EXPECT_EQ(pm.aborted_total(), 2u);
  EXPECT_EQ(pm.aborted(AbortCause::kCcp), 1u);
  EXPECT_EQ(pm.aborted(AbortCause::kRcp), 1u);
  EXPECT_EQ(pm.aborted(AbortCause::kAcp), 0u);
  EXPECT_NEAR(pm.commit_rate(), 1.0 / 3, 1e-9);
  EXPECT_NEAR(pm.abort_rate(AbortCause::kCcp), 1.0 / 3, 1e-9);
  EXPECT_EQ(pm.round_trips(), 15u);
}

TEST(ProgressMonitorTest, ResponseTimeOnlyCommitted) {
  ProgressMonitor pm;
  pm.OnComplete(Outcome(1, true, AbortCause::kNone, 0, 2000));
  pm.OnComplete(Outcome(2, false, AbortCause::kCcp, 0, 99999));
  EXPECT_EQ(pm.response_times().count(), 1u);
  EXPECT_NEAR(pm.response_times().mean(), 2000, 1);
  EXPECT_EQ(pm.response_times_all().count(), 2u);
}

TEST(ProgressMonitorTest, ThroughputUsesVirtualSeconds) {
  ProgressMonitor pm;
  for (uint64_t i = 0; i < 10; ++i) {
    pm.OnComplete(Outcome(i, true, AbortCause::kNone, 0, Millis(10)));
  }
  EXPECT_NEAR(pm.throughput_tps(Seconds(2)), 5.0, 1e-9);
  EXPECT_EQ(pm.throughput_tps(0), 0.0);
}

TEST(ProgressMonitorTest, CommitBuckets) {
  ProgressMonitor pm;
  pm.set_bucket_width(Millis(10));
  pm.OnComplete(Outcome(1, true, AbortCause::kNone, 0, Millis(5)));
  pm.OnComplete(Outcome(2, true, AbortCause::kNone, 0, Millis(15)));
  pm.OnComplete(Outcome(3, true, AbortCause::kNone, 0, Millis(16)));
  ASSERT_EQ(pm.commits_per_bucket().size(), 2u);
  EXPECT_EQ(pm.commits_per_bucket()[0], 1u);
  EXPECT_EQ(pm.commits_per_bucket()[1], 2u);
}

TEST(ProgressMonitorTest, LoadCv) {
  ProgressMonitor pm;
  for (int i = 0; i < 10; ++i) pm.OnSubmit(0, 0);
  for (int i = 0; i < 10; ++i) pm.OnSubmit(1, 0);
  EXPECT_NEAR(pm.home_load_cv(), 0.0, 1e-9);
  for (int i = 0; i < 20; ++i) pm.OnSubmit(1, 0);
  EXPECT_GT(pm.home_load_cv(), 0.3);
}

// Regression (rainbow_lint D1): home_load_cv() accumulates doubles in
// table-iteration order, and sharded runs MergeFrom() each shard's
// monitor in turn. With the old unordered_map the rebuilt table's order
// — and hence the float accumulation order — depended on merge order;
// with the sorted map the CV is bit-identical either way.
TEST(ProgressMonitorTest, HomeLoadCvIndependentOfMergeOrder) {
  ProgressMonitor shard_a, shard_b, shard_c;
  for (int i = 0; i < 7; ++i) shard_a.OnSubmit(3, 0);
  for (int i = 0; i < 11; ++i) shard_b.OnSubmit(1, 0);
  for (int i = 0; i < 5; ++i) shard_c.OnSubmit(2, 0);
  for (int i = 0; i < 2; ++i) shard_c.OnSubmit(3, 0);

  ProgressMonitor forward;
  forward.MergeFrom(shard_a);
  forward.MergeFrom(shard_b);
  forward.MergeFrom(shard_c);
  ProgressMonitor backward;
  backward.MergeFrom(shard_c);
  backward.MergeFrom(shard_b);
  backward.MergeFrom(shard_a);

  EXPECT_EQ(forward.homed_per_site(), backward.homed_per_site());
  EXPECT_EQ(forward.home_load_cv(), backward.home_load_cv());
  EXPECT_GT(forward.home_load_cv(), 0.0);
}

TEST(ProgressMonitorTest, OrphansAndBlockedTimes) {
  ProgressMonitor pm;
  pm.OnOrphanCleanup(TxnId{0, 1}, 2);
  pm.OnOrphanCleanup(TxnId{0, 2}, 2);
  EXPECT_EQ(pm.orphans(), 2u);
  pm.OnBlockedTime(TxnId{0, 1}, Millis(5));
  pm.OnBlockedTime(TxnId{0, 2}, Millis(15));
  EXPECT_EQ(pm.blocked_times().count(), 2u);
  EXPECT_NEAR(pm.blocked_times().mean(), Millis(10), 100);
}

TEST(ProgressMonitorTest, SessionLogKeptOnlyWhenEnabled) {
  ProgressMonitor pm;
  pm.OnComplete(Outcome(1, true, AbortCause::kNone, 0, 100));
  EXPECT_TRUE(pm.outcomes().empty());
  pm.set_keep_outcomes(true);
  pm.OnComplete(Outcome(2, true, AbortCause::kNone, 0, 100));
  ASSERT_EQ(pm.outcomes().size(), 1u);
  std::string log = pm.RenderSessionLog();
  EXPECT_NE(log.find("T2@0"), std::string::npos);
  EXPECT_NE(log.find("COMMIT"), std::string::npos);
}

TEST(ProgressMonitorTest, RenderStatisticsIncludesEverySection) {
  ProgressMonitor pm;
  pm.OnSubmit(0, 0);
  pm.OnComplete(Outcome(1, true, AbortCause::kNone, 0, 1000));
  NetworkStats net;
  std::string table = pm.RenderStatistics(net, Seconds(1));
  for (const char* needle :
       {"committed transactions", "aborts due to CCP", "aborts due to RCP",
        "aborts due to ACP", "commit rate", "orphan transactions",
        "round-trip message pairs", "throughput", "mean response time",
        "home-load imbalance"}) {
    EXPECT_NE(table.find(needle), std::string::npos) << needle;
  }
}

TEST(ProgressMonitorTest, NetLoadCvIgnoresNameServer) {
  NetworkStats net;
  net.per_site_delivered[0] = 100;
  net.per_site_delivered[1] = 100;
  net.per_site_delivered[kNameServerId] = 100000;  // must not skew
  EXPECT_NEAR(ProgressMonitor::net_load_cv(net), 0.0, 1e-9);
  net.per_site_delivered[2] = 400;
  EXPECT_GT(ProgressMonitor::net_load_cv(net), 0.5);
  NetworkStats empty;
  EXPECT_EQ(ProgressMonitor::net_load_cv(empty), 0.0);
}

TEST(ProgressMonitorTest, ThroughputChartRenders) {
  ProgressMonitor pm;
  pm.set_bucket_width(Millis(10));
  for (int i = 0; i < 6; ++i) {
    pm.OnComplete(Outcome(static_cast<uint64_t>(i), true, AbortCause::kNone,
                          0, Millis(i * 5)));
  }
  std::string chart = pm.RenderThroughputChart();
  EXPECT_NE(chart.find("commits per bucket"), std::string::npos);
  EXPECT_NE(chart.find('#'), std::string::npos);
}

TEST(ProgressMonitorTest, MessageChartRenders) {
  NetworkStats net;
  net.bucket_width = Millis(10);
  net.per_bucket = {3, 0, 7};
  std::string chart = ProgressMonitor::RenderMessageChart(net);
  EXPECT_NE(chart.find("network messages per bucket"), std::string::npos);
  EXPECT_NE(chart.find("7.000"), std::string::npos);
}

TEST(ProgressMonitorTest, ResetClears) {
  ProgressMonitor pm;
  pm.OnSubmit(0, 0);
  pm.OnComplete(Outcome(1, true, AbortCause::kNone, 0, 100));
  pm.Reset();
  EXPECT_EQ(pm.submitted(), 0u);
  EXPECT_EQ(pm.committed(), 0u);
  EXPECT_EQ(pm.response_times().count(), 0u);
}

}  // namespace
}  // namespace rainbow
