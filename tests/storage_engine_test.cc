#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "storage/storage_engine.h"

namespace rainbow {
namespace {

// --- LRU-K replacer -------------------------------------------------------

TEST(StorageLruKTest, EvictsInfiniteDistanceFirst) {
  LruKReplacer r(/*num_frames=*/4, /*k=*/2);
  // Frames 0 and 1 get two accesses (finite K-distance); 2 and 3 one.
  r.RecordAccess(0);
  r.RecordAccess(1);
  r.RecordAccess(0);
  r.RecordAccess(1);
  r.RecordAccess(2);
  r.RecordAccess(3);
  for (size_t f = 0; f < 4; ++f) r.SetEvictable(f, true);
  // +inf class (fewer than K accesses) goes first, oldest access first.
  EXPECT_EQ(r.Evict(), std::optional<size_t>(2));
  EXPECT_EQ(r.Evict(), std::optional<size_t>(3));
  // Then the largest backward K-distance (frame 0's 2nd-recent access
  // is older than frame 1's).
  EXPECT_EQ(r.Evict(), std::optional<size_t>(0));
  EXPECT_EQ(r.Evict(), std::optional<size_t>(1));
  EXPECT_EQ(r.Evict(), std::nullopt);
}

TEST(StorageLruKTest, PinnedFramesNotEvicted) {
  LruKReplacer r(2, 2);
  r.RecordAccess(0);
  r.RecordAccess(1);
  r.SetEvictable(1, true);
  EXPECT_EQ(r.evictable_count(), 1u);
  EXPECT_EQ(r.Evict(), std::optional<size_t>(1));
  EXPECT_EQ(r.Evict(), std::nullopt);  // frame 0 never marked evictable
}

TEST(StorageLruKTest, RemoveForgetsHistory) {
  LruKReplacer r(2, 2);
  r.RecordAccess(0);
  r.RecordAccess(0);
  r.RecordAccess(1);
  r.SetEvictable(0, true);
  r.SetEvictable(1, true);
  r.Remove(1);
  EXPECT_EQ(r.evictable_count(), 1u);
  EXPECT_EQ(r.Evict(), std::optional<size_t>(0));
}

// --- buffer pool ----------------------------------------------------------

TEST(StorageBufferPoolTest, FetchMissReadsAndHitSkipsDisk) {
  DiskManager disk(64);
  BufferPool pool(&disk, 4, 2);
  PageId id;
  Page* p = pool.NewPage(&id);
  ASSERT_NE(p, nullptr);
  p->WriteU32(20, 0xabcd);
  pool.UnpinPage(id, true);
  pool.FlushAll();
  pool.Reset();

  uint64_t reads_before = disk.reads();
  Page* q = pool.FetchPage(id);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->ReadU32(20), 0xabcdu);
  EXPECT_EQ(disk.reads(), reads_before + 1);
  pool.UnpinPage(id, false);
  // Second fetch is a hit.
  q = pool.FetchPage(id);
  EXPECT_EQ(disk.reads(), reads_before + 1);
  pool.UnpinPage(id, false);
  EXPECT_GE(pool.stats().hits, 1u);
}

TEST(StorageBufferPoolTest, DirtyVictimFlushedOnEviction) {
  DiskManager disk(64);
  BufferPool pool(&disk, /*num_frames=*/2, 2);
  PageId a, b, c;
  Page* pa = pool.NewPage(&a);
  pa->WriteU32(20, 11);
  pool.UnpinPage(a, true);  // dirty, unpinned -> eviction candidate
  pool.NewPage(&b);
  pool.UnpinPage(b, false);
  // Third page forces an eviction; the dirty victim must reach disk.
  pool.NewPage(&c);
  pool.UnpinPage(c, false);
  EXPECT_GT(pool.stats().evictions, 0u);
  EXPECT_GT(pool.stats().dirty_evictions, 0u);
  Page check(64);
  disk.ReadPage(a, check);
  EXPECT_EQ(check.ReadU32(20), 11u);
}

TEST(StorageBufferPoolTest, AllPinnedFailsFetch) {
  DiskManager disk(64);
  BufferPool pool(&disk, 2, 2);
  PageId a, b, c;
  ASSERT_NE(pool.NewPage(&a), nullptr);
  ASSERT_NE(pool.NewPage(&b), nullptr);
  EXPECT_EQ(pool.NewPage(&c), nullptr);  // both frames pinned
  EXPECT_GT(pool.stats().pin_failures, 0u);
  pool.UnpinPage(a, false);
  EXPECT_NE(pool.NewPage(&c), nullptr);  // freed frame reused
}

TEST(StorageBufferPoolTest, ResetDropsUnflushedWrites) {
  DiskManager disk(64);
  BufferPool pool(&disk, 4, 2);
  PageId id;
  Page* p = pool.NewPage(&id);
  p->WriteU32(20, 7);
  pool.UnpinPage(id, true);
  pool.Reset();  // crash before any flush
  Page check(64);
  disk.ReadPage(id, check);
  EXPECT_EQ(check.ReadU32(20), 0u);  // zero-filled: write never landed
  EXPECT_EQ(pool.resident_pages(), 0u);
}

TEST(StorageBufferPoolTest, UnpinDirtyBitSticks) {
  DiskManager disk(64);
  BufferPool pool(&disk, 4, 2);
  PageId id;
  Page* p = pool.NewPage(&id);
  p->WriteU32(20, 5);
  pool.UnpinPage(id, true);
  // A later clean unpin must not clear the dirty bit.
  pool.FetchPage(id);
  pool.UnpinPage(id, false);
  pool.FlushAll();
  Page check(64);
  disk.ReadPage(id, check);
  EXPECT_EQ(check.ReadU32(20), 5u);
}

// --- engines: parity ------------------------------------------------------

constexpr uint32_t kTestPageSize = 128;

std::unique_ptr<PageStore> MakePageStore(Wal* wal, size_t frames = 16) {
  return std::make_unique<PageStore>(wal, kTestPageSize, frames, 2);
}

TEST(StorageEngineTest, MapAndPageAgreeOnApplySequences) {
  Wal wal;
  MapStore map;
  auto page = MakePageStore(&wal);
  for (ItemId i = 0; i < 50; ++i) {
    map.Load(i, static_cast<Value>(i));
    page->Load(i, static_cast<Value>(i));
  }
  // A scripted mix of fresh, duplicate, and stale applies.
  struct Step { ItemId item; Value value; Version version; };
  std::vector<Step> steps = {
      {3, 30, 2}, {3, 31, 2}, {3, 29, 1}, {7, 70, 5}, {7, 71, 6},
      {49, 1, 1}, {0, -4, 3}, {0, -4, 3}, {25, 8, 9}, {25, 7, 4},
  };
  for (const Step& s : steps) {
    EXPECT_EQ(map.Apply(s.item, s.value, s.version),
              page->Apply(s.item, s.value, s.version))
        << "item " << s.item << " v" << s.version;
  }
  EXPECT_EQ(map.Snapshot(), page->Snapshot());
  EXPECT_EQ(map.size(), page->size());
  for (ItemId i = 0; i < 50; ++i) {
    auto a = map.Get(i);
    auto b = page->Get(i);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->value, b->value);
    EXPECT_EQ(a->version, b->version);
  }
  EXPECT_FALSE(page->Get(99).ok());
  EXPECT_FALSE(page->Apply(99, 1, 1));
}

TEST(StorageEngineTest, RangeMatchesBetweenEngines) {
  Wal wal;
  MapStore map;
  auto page = MakePageStore(&wal);
  for (ItemId i = 0; i < 40; ++i) {
    map.Load(i * 3, static_cast<Value>(i));
    page->Load(i * 3, static_cast<Value>(i));
  }
  std::vector<std::pair<ItemId, ItemCopy>> a, b;
  map.Range(10, 7, a);
  page->Range(10, 7, b);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first);
    EXPECT_EQ(a[i].second.value, b[i].second.value);
  }
  ASSERT_EQ(a.size(), 7u);
  EXPECT_EQ(a[0].first, 12u);
}

TEST(StorageEngineTest, AdoptIfNewerParity) {
  Wal wal;
  MapStore map;
  auto page = MakePageStore(&wal);
  map.Load(1, 5);
  page->Load(1, 5);
  EXPECT_EQ(map.AdoptIfNewer(1, 50, 3), page->AdoptIfNewer(1, 50, 3));
  EXPECT_EQ(map.AdoptIfNewer(1, 40, 2), page->AdoptIfNewer(1, 40, 2));
  EXPECT_EQ(map.AdoptIfNewer(9, 1, 1), page->AdoptIfNewer(9, 1, 1));
  EXPECT_EQ(map.Get(1)->value, page->Get(1)->value);
}

// --- page store: ARIES crash / restart ------------------------------------

WalRecord Prepared(TxnId txn) {
  WalRecord r;
  r.kind = WalRecordKind::kPrepared;
  r.txn = txn;
  r.coordinator = txn.home;
  r.participants = {0, 1};
  return r;
}

size_t CountKind(const Wal& wal, WalRecordKind kind) {
  size_t n = 0;
  for (const auto& rec : wal.records()) {
    if (rec.kind == kind) ++n;
  }
  return n;
}

TEST(StoragePageStoreTest, CommittedWritesSurviveCrashViaRedo) {
  Wal wal;
  auto store = MakePageStore(&wal);
  for (ItemId i = 0; i < 20; ++i) store->Load(i, 0);
  store->FlushAll();  // graceful start: initial image on disk

  TxnId txn{0, 1};
  store->LogPrewrite(txn, 4, 44);
  store->LogPrewrite(txn, 9, 99);
  ASSERT_TRUE(store->Apply(4, 44, 10, txn));
  ASSERT_TRUE(store->Apply(9, 99, 11, txn));
  store->CommitStorageTxn(txn);
  EXPECT_EQ(store->pending_txns(), 0u);

  // Crash without flushing: the committed values exist only in the log.
  store->OnCrash();
  RestartSummary rs = store->Restart();
  EXPECT_EQ(rs.analyzed_txns, 0u);  // txn committed before the crash
  EXPECT_GE(rs.redo_applied, 2u);
  EXPECT_EQ(rs.losers, 0u);
  EXPECT_EQ(rs.tentative_leaks, 0u);
  EXPECT_EQ(store->Get(4)->value, 44);
  EXPECT_EQ(store->Get(4)->version, 10u);
  EXPECT_EQ(store->Get(9)->value, 99);
}

TEST(StoragePageStoreTest, UndecidedLoserRolledBackWithClrs) {
  Wal wal;
  auto store = MakePageStore(&wal);
  for (ItemId i = 0; i < 10; ++i) store->Load(i, 0);
  store->FlushAll();

  // The txn logged prewrites but was neither prepared (no protocol
  // record) nor decided before the crash: a loser.
  TxnId txn{0, 2};
  store->LogPrewrite(txn, 1, 111);
  store->LogPrewrite(txn, 2, 222);
  EXPECT_EQ(store->pending_txns(), 1u);

  store->OnCrash();
  RestartSummary rs = store->Restart();
  EXPECT_EQ(rs.analyzed_txns, 1u);
  EXPECT_EQ(rs.losers, 1u);
  EXPECT_EQ(rs.in_doubt, 0u);
  EXPECT_EQ(rs.undo_clrs, 2u);  // one compensation per prewrite
  EXPECT_EQ(rs.tentative_leaks, 0u);
  EXPECT_EQ(store->pending_txns(), 0u);
  // The pages hold the before-images.
  EXPECT_EQ(store->Get(1)->value, 0);
  EXPECT_EQ(store->Get(1)->version, 0u);
  EXPECT_EQ(store->Get(2)->value, 0);
  // The log closes the loser: abort-path CLRs plus an end record.
  EXPECT_GE(CountKind(wal, WalRecordKind::kStoreClr), 2u);
  EXPECT_GE(CountKind(wal, WalRecordKind::kStoreEnd), 1u);
}

TEST(StoragePageStoreTest, InDoubtTxnStaysPendingAcrossRestart) {
  Wal wal;
  auto store = MakePageStore(&wal);
  for (ItemId i = 0; i < 10; ++i) store->Load(i, 0);
  store->FlushAll();

  TxnId txn{1, 3};
  store->LogPrewrite(txn, 5, 55);
  wal.Append(Prepared(txn));  // force-logged YES vote, no decision

  store->OnCrash();
  RestartSummary rs = store->Restart();
  EXPECT_EQ(rs.analyzed_txns, 1u);
  EXPECT_EQ(rs.in_doubt, 1u);
  EXPECT_EQ(rs.losers, 0u);
  EXPECT_EQ(rs.undo_clrs, 0u);
  EXPECT_EQ(rs.tentative_leaks, 0u);
  EXPECT_EQ(store->pending_txns(), 1u);
  // Tentative data never reached the page.
  EXPECT_EQ(store->Get(5)->value, 0);

  // The decision arrives later through the normal hooks.
  ASSERT_TRUE(store->Apply(5, 55, 9, txn));
  store->CommitStorageTxn(txn);
  EXPECT_EQ(store->pending_txns(), 0u);
  EXPECT_EQ(store->Get(5)->value, 55);
}

TEST(StoragePageStoreTest, InDoubtAbortAfterRestart) {
  Wal wal;
  auto store = MakePageStore(&wal);
  store->Load(5, 7);
  store->FlushAll();
  TxnId txn{1, 4};
  store->LogPrewrite(txn, 5, 55);
  wal.Append(Prepared(txn));
  store->OnCrash();
  store->Restart();
  ASSERT_EQ(store->pending_txns(), 1u);
  store->AbortStorageTxn(txn);
  EXPECT_EQ(store->pending_txns(), 0u);
  EXPECT_EQ(store->Get(5)->value, 7);  // untouched
  EXPECT_GE(CountKind(wal, WalRecordKind::kStoreEnd), 1u);
}

TEST(StoragePageStoreTest, RuntimeAbortIsInertAtRestart) {
  Wal wal;
  auto store = MakePageStore(&wal);
  store->Load(3, 1);
  store->FlushAll();
  TxnId txn{0, 5};
  store->LogPrewrite(txn, 3, 33);
  store->AbortStorageTxn(txn);  // clean runtime abort: CLRs + end
  EXPECT_EQ(store->pending_txns(), 0u);
  EXPECT_EQ(store->Get(3)->value, 1);

  store->OnCrash();
  RestartSummary rs = store->Restart();
  // The txn ended before the crash: not analyzed, nothing undone.
  EXPECT_EQ(rs.analyzed_txns, 0u);
  EXPECT_EQ(rs.undo_clrs, 0u);
  EXPECT_EQ(rs.tentative_leaks, 0u);
  EXPECT_EQ(store->Get(3)->value, 1);
}

TEST(StoragePageStoreTest, LoserUndoPreservesInterleavedCommittedWrite) {
  Wal wal;
  auto store = MakePageStore(&wal);
  store->Load(3, 1);
  store->FlushAll();
  // Loser logs a prewrite against version 0...
  TxnId loser{0, 6};
  store->LogPrewrite(loser, 3, 333);
  // ...then a different committed write lands on the same item (OCC /
  // TSO interleavings allow this: the loser never had the decision).
  TxnId winner{1, 7};
  store->LogPrewrite(winner, 3, 77);
  ASSERT_TRUE(store->Apply(3, 77, 12, winner));
  store->CommitStorageTxn(winner);

  store->OnCrash();
  RestartSummary rs = store->Restart();
  EXPECT_EQ(rs.losers, 1u);
  EXPECT_EQ(rs.tentative_leaks, 0u);
  // The loser's CLR is version-guarded: it must not clobber the
  // committed value the winner installed.
  EXPECT_EQ(store->Get(3)->value, 77);
  EXPECT_EQ(store->Get(3)->version, 12u);
}

TEST(StoragePageStoreTest, DoubleRestartIsIdempotent) {
  Wal wal;
  auto store = MakePageStore(&wal);
  for (ItemId i = 0; i < 10; ++i) store->Load(i, 0);
  store->FlushAll();
  TxnId committed{0, 8}, loser{0, 9};
  store->LogPrewrite(committed, 1, 11);
  ASSERT_TRUE(store->Apply(1, 11, 5, committed));
  store->CommitStorageTxn(committed);
  store->LogPrewrite(loser, 2, 22);

  store->OnCrash();
  RestartSummary first = store->Restart();
  EXPECT_EQ(first.losers, 1u);
  auto snap = store->Snapshot();

  // Crash again immediately: the second restart replays the extended
  // log (now containing the undo CLRs) to the identical state.
  store->OnCrash();
  RestartSummary second = store->Restart();
  EXPECT_EQ(second.losers, 0u);  // the first restart ended the loser
  EXPECT_EQ(second.undo_clrs, 0u);
  EXPECT_EQ(second.tentative_leaks, 0u);
  EXPECT_EQ(store->Snapshot(), snap);
  EXPECT_EQ(store->Get(1)->value, 11);
  EXPECT_EQ(store->Get(2)->value, 0);
}

TEST(StoragePageStoreTest, RestartFromColdDiskReplaysEverything) {
  // No flush at all: the disk image is the post-load state only if
  // FlushAll ran; here even loads were flushed, but every later write
  // exists solely in the log — the honest no-force worst case.
  Wal wal;
  auto store = MakePageStore(&wal, /*frames=*/8);
  for (ItemId i = 0; i < 64; ++i) store->Load(i, 0);
  store->FlushAll();
  Version v = 1;
  for (int round = 0; round < 3; ++round) {
    for (ItemId i = 0; i < 64; i += 3) {
      TxnId txn{0, 100 + v};
      store->LogPrewrite(txn, i, static_cast<Value>(i + round));
      ASSERT_TRUE(store->Apply(i, static_cast<Value>(i + round), v, txn));
      store->CommitStorageTxn(txn);
      ++v;
    }
  }
  auto before = store->Snapshot();
  store->OnCrash();
  RestartSummary rs = store->Restart();
  EXPECT_EQ(rs.tentative_leaks, 0u);
  EXPECT_EQ(store->Snapshot(), before);
}

TEST(StoragePageStoreTest, ShadowMapFuzzWithCrashes) {
  // Scripted (deterministic) interleaving of commits, aborts, crashes
  // and restarts against a shadow map of the committed state.
  Wal wal;
  auto store = MakePageStore(&wal, /*frames=*/8);
  std::map<ItemId, ItemCopy> shadow;
  for (ItemId i = 0; i < 32; ++i) {
    store->Load(i, 0);
    shadow[i] = ItemCopy{0, 0};
  }
  store->FlushAll();

  uint64_t seq = 1;
  Version ver = 1;
  uint32_t x = 1;
  for (int step = 0; step < 200; ++step) {
    x = x * 1664525 + 1013904223;  // LCG: reproducible op script
    ItemId item = (x >> 8) % 32;
    TxnId txn{0, seq++};
    Value value = static_cast<Value>(x % 1000);
    switch ((x >> 3) % 4) {
      case 0:    // prewrite + commit
      case 1: {
        store->LogPrewrite(txn, item, value);
        ASSERT_TRUE(store->Apply(item, value, ver, txn));
        store->CommitStorageTxn(txn);
        shadow[item] = ItemCopy{value, ver};
        ++ver;
        break;
      }
      case 2: {  // prewrite + abort
        store->LogPrewrite(txn, item, value);
        store->AbortStorageTxn(txn);
        break;
      }
      case 3: {  // prewrite, then crash + restart (loser)
        store->LogPrewrite(txn, item, value);
        store->OnCrash();
        RestartSummary rs = store->Restart();
        ASSERT_EQ(rs.tentative_leaks, 0u);
        break;
      }
    }
    if (step % 37 == 0) store->FlushAll();
  }
  store->OnCrash();
  RestartSummary rs = store->Restart();
  ASSERT_EQ(rs.tentative_leaks, 0u);
  EXPECT_EQ(store->Snapshot(), shadow);
}

// --- disk manager: checksums, doublewrite, fault injection ----------------

Page MakeTestPage(uint32_t size, Lsn lsn, uint8_t fill) {
  Page p(size);
  p.set_page_lsn(lsn);
  for (uint32_t off = kPageHeaderLsnBytes; off < size; ++off) {
    p.WriteU8(off, fill);
  }
  return p;
}

TEST(StorageDiskTest, ReadDistinguishesNeverWrittenFromAllZeroPage) {
  // Regression: a never-written page and a durably written all-zero
  // page both read back as zeros; only the status can tell them apart,
  // and quarantine must not "heal" pages that never existed.
  DiskManager disk(64);
  PageId id = disk.AllocatePage();
  Page out(64);
  EXPECT_EQ(disk.ReadPage(id, out), PageReadStatus::kNeverWritten);
  EXPECT_FALSE(disk.HasPage(id));

  Page zeros(64);  // all-zero content, LSN 0 — legitimately written out
  disk.WritePage(id, zeros);
  EXPECT_TRUE(disk.HasPage(id));
  EXPECT_EQ(disk.ReadPage(id, out), PageReadStatus::kOk);
  EXPECT_EQ(disk.quarantined(), 0u);
  EXPECT_EQ(disk.corrupt_reads(), 0u);
}

TEST(StorageDiskTest, ChecksumQuarantinesCorruptPrimaryAndHealsFromJournal) {
  FaultyDiskManager disk(64);
  PageId id = disk.AllocatePage();
  disk.WritePage(id, MakeTestPage(64, 7, 0xab));

  ASSERT_TRUE(disk.FlipPrimaryByte(id, 40));
  Page out(64);
  EXPECT_EQ(disk.ReadPage(id, out), PageReadStatus::kRecovered);
  EXPECT_EQ(disk.quarantined(), 1u);
  EXPECT_EQ(out.ReadU8(40), 0xab);  // journal copy, not the corrupt one
  EXPECT_EQ(out.page_lsn(), 7u);

  // The heal rewrote the primary: the next read is a clean hit.
  EXPECT_EQ(disk.ReadPage(id, out), PageReadStatus::kOk);
  EXPECT_EQ(disk.quarantined(), 1u);
}

TEST(StorageDiskTest, ChecksumOffReturnsCorruptBytesUnchecked) {
  // The planted-bug configuration: without checksums the flip reads
  // back as "valid" data — exactly what the nemesis storage hunt
  // demonstrates against --no-page-crc.
  FaultyDiskManager disk(64, /*checksums=*/false);
  PageId id = disk.AllocatePage();
  disk.WritePage(id, MakeTestPage(64, 7, 0xab));
  ASSERT_TRUE(disk.FlipPrimaryByte(id, 40));
  Page out(64);
  EXPECT_EQ(disk.ReadPage(id, out), PageReadStatus::kOk);
  EXPECT_EQ(out.ReadU8(40), 0xab ^ 0xff);
  EXPECT_EQ(disk.quarantined(), 0u);
}

TEST(StorageDiskTest, TornAndShortWritesHealFromJournal) {
  for (StorageFaultKind kind :
       {StorageFaultKind::kTornWrite, StorageFaultKind::kShortWrite}) {
    FaultyDiskManager disk(64, /*checksums=*/true, /*seed=*/3);
    PageId id = disk.AllocatePage();
    disk.WritePage(id, MakeTestPage(64, 1, 0x11));  // clean baseline

    disk.Arm(kind, 1.0);
    disk.WritePage(id, MakeTestPage(64, 2, 0x22));
    disk.Arm(kind, 0.0);
    EXPECT_EQ(disk.torn_writes() + disk.short_writes(), 1u);

    // The mangled primary fails its CRC; the journal (written first,
    // intact) supplies the new image.
    Page out(64);
    EXPECT_EQ(disk.ReadPage(id, out), PageReadStatus::kRecovered);
    EXPECT_EQ(out.page_lsn(), 2u);
    EXPECT_EQ(out.ReadU8(50), 0x22);
    EXPECT_EQ(disk.quarantined(), 1u);
  }
}

TEST(StorageDiskTest, LostWriteDetectedByJournalLsn) {
  // A lost write leaves a STALE-BUT-VALID primary: its CRC passes, so
  // only the journal's newer page LSN exposes the fsync lie.
  FaultyDiskManager disk(64, /*checksums=*/true, /*seed=*/3);
  PageId id = disk.AllocatePage();
  disk.WritePage(id, MakeTestPage(64, 1, 0x11));

  disk.Arm(StorageFaultKind::kLostWrite, 1.0);
  disk.WritePage(id, MakeTestPage(64, 2, 0x22));
  disk.Arm(StorageFaultKind::kLostWrite, 0.0);
  EXPECT_EQ(disk.lost_writes(), 1u);

  Page out(64);
  EXPECT_EQ(disk.ReadPage(id, out), PageReadStatus::kRecovered);
  EXPECT_EQ(out.page_lsn(), 2u);
  EXPECT_EQ(out.ReadU8(50), 0x22);
  EXPECT_EQ(disk.lost_write_restores(), 1u);
}

TEST(StorageDiskTest, ReadBitFlipsAreCaughtWhileChecksummed) {
  FaultyDiskManager disk(64, /*checksums=*/true, /*seed=*/9);
  PageId id = disk.AllocatePage();
  disk.WritePage(id, MakeTestPage(64, 5, 0x77));

  disk.Arm(StorageFaultKind::kReadBitFlip, 1.0);
  Page out(64);
  for (int i = 0; i < 8; ++i) {
    PageReadStatus st = disk.ReadPage(id, out);
    EXPECT_TRUE(st == PageReadStatus::kOk || st == PageReadStatus::kRecovered);
    EXPECT_EQ(out.page_lsn(), 5u);
    EXPECT_EQ(out.ReadU8(33), 0x77);  // never surfaces a flipped byte
  }
  EXPECT_EQ(disk.read_flips(), 8u);
  EXPECT_GE(disk.quarantined(), 1u);
}

TEST(StorageDiskTest, WriteLimitModelsMachineDeath) {
  FaultyDiskManager disk(64);
  PageId a = disk.AllocatePage();
  PageId b = disk.AllocatePage();
  disk.ArmWriteLimit(1);
  disk.WritePage(a, MakeTestPage(64, 1, 0x11));  // the last write that lands
  disk.WritePage(b, MakeTestPage(64, 2, 0x22));  // dropped — journal included
  EXPECT_EQ(disk.dropped_writes(), 1u);

  Page out(64);
  EXPECT_EQ(disk.ReadPage(a, out), PageReadStatus::kOk);
  EXPECT_EQ(disk.ReadPage(b, out), PageReadStatus::kNeverWritten);

  disk.DisarmWriteLimit();
  disk.WritePage(b, MakeTestPage(64, 3, 0x33));
  EXPECT_EQ(disk.ReadPage(b, out), PageReadStatus::kOk);
}

TEST(StorageDiskTest, FaultStreamIsSeedDeterministic) {
  // Two disks with the same seed inject the identical fault sequence;
  // a different seed diverges. This is what makes nemesis storage
  // schedules replayable.
  auto run = [](uint64_t seed) {
    FaultyDiskManager disk(64, true, seed);
    PageId id = disk.AllocatePage();
    disk.Arm(StorageFaultKind::kTornWrite, 0.5);
    std::vector<uint64_t> torn;
    for (int i = 0; i < 32; ++i) {
      disk.WritePage(id, MakeTestPage(64, static_cast<Lsn>(i + 1),
                                      static_cast<uint8_t>(i)));
      torn.push_back(disk.torn_writes());
    }
    return torn;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

// --- page store: fuzzy checkpoints ----------------------------------------

TEST(StoragePageStoreTest, CheckpointBoundsRestartScan) {
  Wal wal;
  PageStoreOptions opts;
  opts.page_size = kTestPageSize;
  opts.pool_pages = 16;
  auto store = std::make_unique<PageStore>(&wal, opts);
  for (ItemId i = 0; i < 20; ++i) store->Load(i, 0);
  store->FlushAll();

  Version ver = 1;
  auto commit = [&](ItemId item, Value value) {
    TxnId txn{0, ver};
    store->LogPrewrite(txn, item, value);
    ASSERT_TRUE(store->Apply(item, value, ver, txn));
    store->CommitStorageTxn(txn);
    ++ver;
  };
  for (ItemId i = 0; i < 20; ++i) commit(i, static_cast<Value>(i + 100));

  const Lsn log_before_ckpt = wal.LastLsn();
  Lsn master = store->Checkpoint();
  EXPECT_NE(master, kNoLsn);
  EXPECT_EQ(wal.master(), master);
  ASSERT_GT(wal.size(), 1u);
  ASSERT_TRUE(wal.Contains(master));
  EXPECT_EQ(wal.At(master).kind, WalRecordKind::kCheckpointBegin);
  EXPECT_EQ(wal.records().back().kind, WalRecordKind::kCheckpointEnd);

  for (ItemId i = 0; i < 4; ++i) commit(i, static_cast<Value>(i + 200));
  auto before = store->Snapshot();

  store->OnCrash();
  RestartSummary rs = store->Restart();
  EXPECT_EQ(rs.tentative_leaks, 0u);
  // Analysis started at the master record, not at LSN 1.
  EXPECT_LT(rs.log_scanned, wal.LastLsn() - log_before_ckpt + 4);
  EXPECT_GE(rs.redo_start, 1u);
  EXPECT_EQ(store->Snapshot(), before);
}

TEST(StoragePageStoreTest, CheckpointCadenceFiresAutomatically) {
  Wal wal;
  PageStoreOptions opts;
  opts.page_size = kTestPageSize;
  opts.pool_pages = 16;
  opts.checkpoint_interval = 16;
  auto store = std::make_unique<PageStore>(&wal, opts);
  for (ItemId i = 0; i < 10; ++i) store->Load(i, 0);
  store->FlushAll();

  for (Version ver = 1; ver <= 40; ++ver) {
    TxnId txn{0, ver};
    ItemId item = ver % 10;
    store->LogPrewrite(txn, item, static_cast<Value>(ver));
    ASSERT_TRUE(store->Apply(item, static_cast<Value>(ver), ver, txn));
    store->CommitStorageTxn(txn);
  }
  // The cadence fired without a manual Checkpoint() call, and each
  // completed checkpoint reclaimed the log head: only the live tail
  // (from the latest master's barrier on) is still retained.
  EXPECT_GE(CountKind(wal, WalRecordKind::kCheckpointEnd), 1u);
  EXPECT_NE(wal.master(), kNoLsn);
  ASSERT_TRUE(wal.Contains(wal.master()));
  EXPECT_EQ(wal.At(wal.master()).kind, WalRecordKind::kCheckpointBegin);
  EXPECT_GT(wal.base(), 0u);
  EXPECT_LT(wal.size(), static_cast<size_t>(wal.LastLsn()));
}

TEST(StoragePageStoreTest, CrashBetweenCheckpointHalvesKeepsOldMaster) {
  Wal wal;
  PageStoreOptions opts;
  opts.page_size = kTestPageSize;
  auto store = std::make_unique<PageStore>(&wal, opts);
  for (ItemId i = 0; i < 10; ++i) store->Load(i, 0);
  store->FlushAll();

  Version ver = 1;
  auto commit = [&](ItemId item, Value value) {
    TxnId txn{0, ver};
    store->LogPrewrite(txn, item, value);
    ASSERT_TRUE(store->Apply(item, value, ver, txn));
    store->CommitStorageTxn(txn);
    ++ver;
  };
  commit(1, 11);
  Lsn first = store->Checkpoint();
  commit(2, 22);

  // Crash with the second checkpoint OPEN: begin logged, no end. The
  // master must still point at the last COMPLETE checkpoint.
  Lsn second_begin = store->BeginCheckpoint();
  EXPECT_GT(second_begin, first);
  EXPECT_EQ(wal.master(), first);
  auto before = store->Snapshot();
  store->OnCrash();
  RestartSummary rs = store->Restart();
  EXPECT_EQ(rs.tentative_leaks, 0u);
  EXPECT_EQ(store->Snapshot(), before);
  EXPECT_EQ(wal.master(), first);
}

}  // namespace
}  // namespace rainbow
