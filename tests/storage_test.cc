#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "storage/local_store.h"
#include "storage/wal.h"

namespace rainbow {
namespace {

TEST(LocalStoreTest, LoadAndGet) {
  LocalStore store;
  store.Load(3, 42);
  EXPECT_TRUE(store.Has(3));
  EXPECT_FALSE(store.Has(4));
  auto copy = store.Get(3);
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(copy->value, 42);
  EXPECT_EQ(copy->version, 0u);
  EXPECT_FALSE(store.Get(4).ok());
}

TEST(LocalStoreTest, ApplyAdvancesVersion) {
  LocalStore store;
  store.Load(1, 0);
  EXPECT_TRUE(store.Apply(1, 10, 1));
  EXPECT_TRUE(store.Apply(1, 20, 2));
  auto copy = store.Get(1);
  EXPECT_EQ(copy->value, 20);
  EXPECT_EQ(copy->version, 2u);
}

TEST(LocalStoreTest, StaleApplyIgnored) {
  LocalStore store;
  store.Load(1, 0);
  EXPECT_TRUE(store.Apply(1, 10, 2));
  EXPECT_FALSE(store.Apply(1, 99, 2));  // duplicate version
  EXPECT_FALSE(store.Apply(1, 99, 1));  // older version
  EXPECT_EQ(store.Get(1)->value, 10);
}

TEST(LocalStoreTest, ApplyToUnknownItemFails) {
  LocalStore store;
  EXPECT_FALSE(store.Apply(7, 1, 1));
}

TEST(LocalStoreTest, AdoptIfNewer) {
  LocalStore store;
  store.Load(1, 5);
  EXPECT_TRUE(store.AdoptIfNewer(1, 50, 3));
  EXPECT_FALSE(store.AdoptIfNewer(1, 40, 2));  // older
  EXPECT_FALSE(store.AdoptIfNewer(9, 1, 1));   // not hosted
  EXPECT_EQ(store.Get(1)->value, 50);
}

WalRecord Prepared(TxnId txn, std::vector<WalRecord::Write> writes,
                   std::vector<SiteId> participants, bool three_phase = false) {
  WalRecord r;
  r.kind = WalRecordKind::kPrepared;
  r.txn = txn;
  r.coordinator = txn.home;
  r.writes = std::move(writes);
  r.participants = std::move(participants);
  r.three_phase = three_phase;
  return r;
}

TEST(WalTest, ScanSummarizesPerTxn) {
  Wal wal;
  TxnId t1{0, 1}, t2{0, 2};
  wal.Append(Prepared(t1, {{1, 10, 1}}, {0, 1}));
  wal.Append(WalRecord::Protocol(WalRecordKind::kCommitDecision, t1, 0, {}, {}, false));
  wal.Append(WalRecord::Protocol(WalRecordKind::kApplied, t1, 0, {}, {}, false));
  wal.Append(Prepared(t2, {}, {0, 2}));

  auto scan = wal.Scan();
  ASSERT_TRUE(scan.contains(t1));
  EXPECT_TRUE(scan[t1].prepared);
  EXPECT_TRUE(scan[t1].decided);
  EXPECT_TRUE(scan[t1].commit);
  EXPECT_TRUE(scan[t1].applied);
  EXPECT_FALSE(scan[t1].ended);
  EXPECT_TRUE(scan[t2].prepared);
  EXPECT_FALSE(scan[t2].decided);
}

TEST(WalTest, InDoubtFindsPreparedUndecided) {
  Wal wal;
  TxnId decided{0, 1}, in_doubt{0, 2};
  wal.Append(Prepared(decided, {}, {0}));
  wal.Append(WalRecord::Protocol(WalRecordKind::kAbortDecision, decided, 0, {}, {},
                       false));
  wal.Append(Prepared(in_doubt, {{4, 9, 2}}, {0, 1}));

  auto doubts = wal.InDoubt();
  ASSERT_EQ(doubts.size(), 1u);
  EXPECT_EQ(doubts[0].txn, in_doubt);
  ASSERT_EQ(doubts[0].writes.size(), 1u);
  EXPECT_EQ(doubts[0].writes[0].item, 4u);
  EXPECT_EQ(doubts[0].writes[0].version, 2u);
}

TEST(WalTest, DecidedUnendedIsCoordinatorOnly) {
  Wal wal;
  TxnId coord_txn{0, 1}, part_txn{2, 7}, closed{0, 3};
  // Coordinator decision (has participants), never ended.
  wal.Append(WalRecord::Protocol(WalRecordKind::kCommitDecision, coord_txn, 0, {},
                       {0, 1, 2}, false));
  // Participant decision (no participants): not ours to finish.
  wal.Append(WalRecord::Protocol(WalRecordKind::kCommitDecision, part_txn, 2, {}, {},
                       false));
  // Coordinator decision that was ended.
  wal.Append(WalRecord::Protocol(WalRecordKind::kAbortDecision, closed, 0, {}, {0, 1},
                       false));
  wal.Append(WalRecord::Protocol(WalRecordKind::kEnd, closed, 0, {}, {}, false));

  auto open = wal.DecidedUnended();
  ASSERT_EQ(open.size(), 1u);
  EXPECT_EQ(open[0].txn, coord_txn);
  EXPECT_TRUE(open[0].commit);
  EXPECT_EQ(open[0].participants, (std::vector<SiteId>{0, 1, 2}));
}

TEST(WalTest, CoordinatorAlsoParticipant) {
  // A site that prepared (as participant) AND logged the coordinator
  // decision must still re-propagate the decision after recovery.
  Wal wal;
  TxnId txn{0, 1};
  wal.Append(Prepared(txn, {{1, 5, 1}}, {0, 1}));
  wal.Append(
      WalRecord::Protocol(WalRecordKind::kCommitDecision, txn, 0, {}, {0, 1}, false));
  auto open = wal.DecidedUnended();
  ASSERT_EQ(open.size(), 1u);
  EXPECT_EQ(open[0].txn, txn);
  // And it is not in doubt (the decision is known).
  EXPECT_TRUE(wal.InDoubt().empty());
}

TEST(WalTest, SerializeRoundTrip) {
  Wal wal;
  TxnId t1{0, 1}, t2{3, 9};
  wal.Append(Prepared(t1, {{1, 10, 1}, {2, -5, 7}}, {0, 1, 2}, true));
  wal.Append(WalRecord::Protocol(WalRecordKind::kCommitDecision, t1, 0, {}, {0, 1},
                       false));
  wal.Append(WalRecord::Protocol(WalRecordKind::kApplied, t1, 0, {}, {}, false));
  wal.Append(Prepared(t2, {}, {3}));
  wal.Append(WalRecord::Protocol(WalRecordKind::kEnd, t1, 0, {}, {}, false));

  Wal loaded;
  ASSERT_TRUE(loaded.Deserialize(wal.Serialize()).ok());
  ASSERT_EQ(loaded.size(), wal.size());
  for (size_t i = 0; i < wal.size(); ++i) {
    EXPECT_EQ(loaded.records()[i].kind, wal.records()[i].kind);
    EXPECT_EQ(loaded.records()[i].txn, wal.records()[i].txn);
    EXPECT_EQ(loaded.records()[i].participants,
              wal.records()[i].participants);
    EXPECT_EQ(loaded.records()[i].writes.size(),
              wal.records()[i].writes.size());
  }
  // Derived views agree too.
  EXPECT_EQ(loaded.InDoubt().size(), wal.InDoubt().size());
  EXPECT_EQ(loaded.DecidedUnended().size(), wal.DecidedUnended().size());
  // Record contents survive.
  EXPECT_EQ(loaded.records()[0].writes[1].value, -5);
  EXPECT_EQ(loaded.records()[0].writes[1].version, 7u);
  EXPECT_TRUE(loaded.records()[0].three_phase);
}

TEST(WalTest, DeserializeRejectsCorruption) {
  Wal wal;
  wal.Append(Prepared(TxnId{0, 1}, {{1, 2, 3}}, {0, 1}));
  std::vector<uint8_t> good = wal.Serialize();

  Wal target;
  // Bad magic.
  std::vector<uint8_t> bad = good;
  bad[0] ^= 0xff;
  EXPECT_FALSE(target.Deserialize(bad).ok());
  // Truncations at every length must fail cleanly.
  for (size_t len = 0; len < good.size(); ++len) {
    std::vector<uint8_t> cut(good.begin(),
                             good.begin() + static_cast<ptrdiff_t>(len));
    EXPECT_FALSE(target.Deserialize(cut).ok()) << "length " << len;
  }
  // Trailing garbage.
  bad = good;
  bad.push_back(0);
  EXPECT_FALSE(target.Deserialize(bad).ok());
  // A failed load leaves the target unchanged.
  ASSERT_TRUE(target.Deserialize(good).ok());
  EXPECT_EQ(target.size(), 1u);
  EXPECT_FALSE(target.Deserialize(bad).ok());
  EXPECT_EQ(target.size(), 1u);
}

TEST(WalTest, FileRoundTrip) {
  Wal wal;
  wal.Append(Prepared(TxnId{1, 2}, {{4, 44, 2}}, {0, 1}));
  wal.Append(WalRecord::Protocol(WalRecordKind::kAbortDecision, TxnId{1, 2}, 0, {}, {},
                       false));
  std::string path = ::testing::TempDir() + "/rainbow_wal_test.bin";
  ASSERT_TRUE(wal.SaveToFile(path).ok());
  Wal loaded;
  ASSERT_TRUE(loaded.LoadFromFile(path).ok());
  EXPECT_EQ(loaded.size(), 2u);
  auto scan = loaded.Scan();
  const auto& st = scan[TxnId{1, 2}];
  EXPECT_TRUE(st.prepared);
  EXPECT_TRUE(st.decided);
  EXPECT_FALSE(st.commit);
  EXPECT_FALSE(loaded.LoadFromFile(path + ".missing").ok());
  std::remove(path.c_str());
}

TEST(LocalStoreTest, ApplyIsIdempotent) {
  // Recovery replays decisions; re-applying the exact same write must be
  // a no-op (returns false, state unchanged) so replay order/multiplicity
  // cannot change the committed state.
  LocalStore store;
  store.Load(1, 0);
  EXPECT_TRUE(store.Apply(1, 10, 3));
  EXPECT_FALSE(store.Apply(1, 10, 3));  // identical replay
  EXPECT_EQ(store.Get(1)->value, 10);
  EXPECT_EQ(store.Get(1)->version, 3u);
  // Replaying a whole prefix of history is equally inert.
  EXPECT_TRUE(store.Apply(1, 20, 5));
  EXPECT_FALSE(store.Apply(1, 10, 3));
  EXPECT_FALSE(store.Apply(1, 20, 5));
  EXPECT_EQ(store.Get(1)->value, 20);
  EXPECT_EQ(store.Get(1)->version, 5u);
}

TEST(LocalStoreTest, AdoptIfNewerIsIdempotent) {
  LocalStore store;
  store.Load(1, 0);
  EXPECT_TRUE(store.AdoptIfNewer(1, 7, 2));
  EXPECT_FALSE(store.AdoptIfNewer(1, 7, 2));  // identical replay
  // Apply and AdoptIfNewer share the stale-version gate, so refresh
  // adoption interleaved with decision replay converges the same way.
  EXPECT_FALSE(store.Apply(1, 7, 2));
  EXPECT_TRUE(store.Apply(1, 9, 4));
  EXPECT_FALSE(store.AdoptIfNewer(1, 8, 3));
  EXPECT_EQ(store.Get(1)->value, 9);
  EXPECT_EQ(store.Get(1)->version, 4u);
}

TEST(WalTest, InDoubtCanonicalOrderRegardlessOfAppendOrder) {
  // Regression: InDoubt() used to surface transactions in the scan's
  // unordered_map iteration order, so two sites replaying the same log
  // could reinstate in-doubt transactions in different orders. The
  // result must be sorted by TxnId no matter how the appends interleave.
  std::vector<TxnId> txns = {{2, 9}, {0, 3}, {1, 7}, {3, 1}, {0, 5}};
  Wal shuffled;
  for (TxnId t : txns) shuffled.Append(Prepared(t, {}, {0, 1}));
  Wal ordered;
  std::vector<TxnId> sorted = txns;
  std::sort(sorted.begin(), sorted.end());
  for (TxnId t : sorted) ordered.Append(Prepared(t, {}, {0, 1}));

  auto a = shuffled.InDoubt();
  auto b = ordered.InDoubt();
  ASSERT_EQ(a.size(), txns.size());
  ASSERT_EQ(b.size(), txns.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].txn, b[i].txn) << "position " << i;
    if (i > 0) {
      EXPECT_TRUE(a[i - 1].txn < a[i].txn);
    }
  }
}

TEST(WalTest, DecidedUnendedCanonicalOrderRegardlessOfAppendOrder) {
  std::vector<TxnId> txns = {{1, 4}, {0, 8}, {2, 2}, {0, 6}};
  Wal shuffled;
  for (TxnId t : txns) {
    shuffled.Append(WalRecord::Protocol(WalRecordKind::kCommitDecision, t,
                                        t.home, {}, {0, 1}, false));
  }
  Wal ordered;
  std::vector<TxnId> sorted = txns;
  std::sort(sorted.begin(), sorted.end());
  for (TxnId t : sorted) {
    ordered.Append(WalRecord::Protocol(WalRecordKind::kCommitDecision, t,
                                       t.home, {}, {0, 1}, false));
  }
  auto a = shuffled.DecidedUnended();
  auto b = ordered.DecidedUnended();
  ASSERT_EQ(a.size(), txns.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].txn, b[i].txn) << "position " << i;
    if (i > 0) {
      EXPECT_TRUE(a[i - 1].txn < a[i].txn);
    }
  }
}

TEST(WalTest, LoadFromFileReportsReadErrors) {
  // Regression: LoadFromFile returned whatever partial bytes fread
  // produced when the stream errored mid-read. fopen("rb") on a
  // directory succeeds on POSIX but every read fails, which exercises
  // exactly the ferror path.
  std::string dir = ::testing::TempDir() + "/rainbow_wal_dir_test";
  std::error_code ec;
  std::filesystem::create_directory(dir, ec);
  ASSERT_TRUE(std::filesystem::is_directory(dir));
  Wal wal;
  Status s = wal.LoadFromFile(dir);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_NE(s.message().find(dir), std::string::npos);
  EXPECT_EQ(wal.size(), 0u);
  std::filesystem::remove(dir);
}

WalRecord StoreUpdate(TxnId txn, ItemId item, Value before_v, Version before_ver,
                      Value value, Version version, bool tentative,
                      Lsn prev_lsn) {
  WalRecord r;
  r.kind = WalRecordKind::kStoreUpdate;
  r.txn = txn;
  r.prev_lsn = prev_lsn;
  r.store.item = item;
  r.store.page_id = 3;
  r.store.before_value = before_v;
  r.store.before_version = before_ver;
  r.store.value = value;
  r.store.version = version;
  r.store.tentative = tentative;
  return r;
}

TEST(WalTest, StoreRecordsRoundTrip) {
  Wal wal;
  TxnId txn{1, 6};
  WalRecord begin;
  begin.kind = WalRecordKind::kStoreBegin;
  begin.txn = txn;
  Lsn b = wal.Append(begin);
  Lsn u = wal.Append(StoreUpdate(txn, 4, 10, 2, 99, (1ull << 63) | 2, true, b));
  WalRecord clr;
  clr.kind = WalRecordKind::kStoreClr;
  clr.txn = txn;
  clr.prev_lsn = u;
  clr.undo_next_lsn = b;
  clr.store.item = 4;
  clr.store.value = 10;
  clr.store.version = 2;
  clr.store.before_value = 99;
  clr.store.before_version = (1ull << 63) | 2;
  wal.Append(clr);
  WalRecord end;
  end.kind = WalRecordKind::kStoreEnd;
  end.txn = txn;
  wal.Append(end);

  Wal loaded;
  ASSERT_TRUE(loaded.Deserialize(wal.Serialize()).ok());
  ASSERT_EQ(loaded.size(), 4u);
  const WalRecord& lu = loaded.records()[1];
  EXPECT_EQ(lu.kind, WalRecordKind::kStoreUpdate);
  EXPECT_EQ(lu.store.item, 4u);
  EXPECT_EQ(lu.store.before_value, 10);
  EXPECT_EQ(lu.store.before_version, 2u);
  EXPECT_EQ(lu.store.value, 99);
  EXPECT_EQ(lu.store.version, (1ull << 63) | 2);
  EXPECT_TRUE(lu.store.tentative);
  EXPECT_EQ(lu.prev_lsn, b);
  const WalRecord& lc = loaded.records()[2];
  EXPECT_EQ(lc.kind, WalRecordKind::kStoreClr);
  EXPECT_EQ(lc.undo_next_lsn, b);
}

TEST(WalTest, DeserializePrefixPropertyNeverPartiallyApplies) {
  // Property: for EVERY prefix of a valid serialized log, Deserialize
  // returns a clean error (no crash, no partial state) and leaves the
  // target's records untouched. Uses a log with protocol AND store
  // records so every field's decoder sees truncation.
  Wal wal;
  TxnId t1{0, 1}, t2{2, 5};
  wal.Append(Prepared(t1, {{1, 10, 1}, {2, -5, 7}}, {0, 1, 2}, true));
  WalRecord begin;
  begin.kind = WalRecordKind::kStoreBegin;
  begin.txn = t2;
  Lsn b = wal.Append(begin);
  wal.Append(StoreUpdate(t2, 7, 1, 0, 42, (1ull << 63) | 3, true, b));
  wal.Append(WalRecord::Protocol(WalRecordKind::kCommitDecision, t1, 0, {},
                                 {0, 1}, false));
  std::vector<uint8_t> good = wal.Serialize();

  Wal target;
  WalRecord seed;
  seed.kind = WalRecordKind::kStoreCommit;
  seed.txn = t1;
  target.Append(seed);
  for (size_t len = 0; len < good.size(); ++len) {
    std::vector<uint8_t> cut(good.begin(),
                             good.begin() + static_cast<ptrdiff_t>(len));
    Status s = target.Deserialize(cut);
    EXPECT_FALSE(s.ok()) << "prefix length " << len;
    ASSERT_EQ(target.size(), 1u) << "partial apply at length " << len;
    EXPECT_EQ(target.records()[0].kind, WalRecordKind::kStoreCommit);
  }
  // The full buffer still parses (the loop didn't poison the target).
  ASSERT_TRUE(target.Deserialize(good).ok());
  EXPECT_EQ(target.size(), wal.size());
}

TEST(WalTest, TolerantLoadTruncatesTornTail) {
  // A crash mid-append leaves the final record cut short. The tolerant
  // loader must drop exactly the torn tail and keep every intact prefix
  // record, whatever byte the cut landed on.
  Wal wal;
  wal.Append(Prepared(TxnId{0, 1}, {{1, 10, 1}}, {0, 1}));
  wal.Append(WalRecord::Protocol(WalRecordKind::kCommitDecision, TxnId{0, 1},
                                 0, {}, {0, 1}, false));
  wal.Append(Prepared(TxnId{2, 7}, {{3, 30, 3}}, {2}));
  std::vector<uint8_t> good = wal.Serialize();

  // Find where the last record's frame begins: serialize a 2-record log
  // of the same prefix and measure.
  Wal prefix;
  prefix.Append(wal.records()[0]);
  prefix.Append(wal.records()[1]);
  const size_t last_frame = prefix.Serialize().size();

  for (size_t len = last_frame; len < good.size(); ++len) {
    std::vector<uint8_t> cut(good.begin(),
                             good.begin() + static_cast<ptrdiff_t>(len));
    Wal loaded;
    size_t dropped = 0;
    Status s = loaded.DeserializeTolerant(cut, &dropped);
    ASSERT_TRUE(s.ok()) << "cut at " << len << ": " << s;
    EXPECT_EQ(loaded.size(), 2u) << "cut at " << len;
    EXPECT_EQ(dropped, 1u) << "cut at " << len;
    // The strict loader must still reject the same bytes.
    Wal strict;
    EXPECT_FALSE(strict.Deserialize(cut).ok()) << "cut at " << len;
  }
}

TEST(WalTest, TolerantLoadDropsCorruptFinalRecord) {
  // A bit flipped inside the LAST record is indistinguishable from a
  // torn append of that record: dropped, not fatal.
  Wal wal;
  wal.Append(Prepared(TxnId{0, 1}, {{1, 10, 1}}, {0, 1}));
  wal.Append(Prepared(TxnId{0, 2}, {{2, 20, 2}}, {0, 1}));
  std::vector<uint8_t> bad = wal.Serialize();
  bad.back() ^= 0xff;  // payload tail of the final record

  Wal loaded;
  size_t dropped = 0;
  ASSERT_TRUE(loaded.DeserializeTolerant(bad, &dropped).ok());
  EXPECT_EQ(loaded.size(), 1u);
  EXPECT_EQ(dropped, 1u);
  EXPECT_EQ(loaded.records()[0].txn, (TxnId{0, 1}));
}

TEST(WalTest, TolerantLoadRejectsMidLogCorruption) {
  // Corruption BEFORE intact records is media damage, not a torn
  // append: the tolerant loader reports IoError and leaves the target
  // untouched instead of silently truncating committed history.
  Wal wal;
  wal.Append(Prepared(TxnId{0, 1}, {{1, 10, 1}}, {0, 1}));
  wal.Append(Prepared(TxnId{0, 2}, {{2, 20, 2}}, {0, 1}));
  wal.Append(Prepared(TxnId{0, 3}, {{3, 30, 3}}, {0, 1}));
  std::vector<uint8_t> bad = wal.Serialize();
  // First record's payload starts right after the file header (v4 with
  // an empty truncation digest: magic + version + master + base +
  // digest count + record count = 32 bytes) and the first [len][crc]
  // frame: flip a byte there.
  bad[32 + 8 + 2] ^= 0x40;

  Wal target;
  target.Append(Prepared(TxnId{9, 9}, {}, {0}));
  size_t dropped = 77;
  Status s = target.DeserializeTolerant(bad, &dropped);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_NE(s.message().find("corruption"), std::string::npos);
  EXPECT_EQ(target.size(), 1u);  // unchanged
}

TEST(WalTest, MasterAndCheckpointRoundTrip) {
  Wal wal;
  wal.Append(Prepared(TxnId{0, 1}, {{1, 10, 1}}, {0, 1}));
  WalRecord begin;
  begin.kind = WalRecordKind::kCheckpointBegin;
  Lsn b = wal.Append(begin);
  WalRecord end;
  end.kind = WalRecordKind::kCheckpointEnd;
  end.prev_lsn = b;
  end.checkpoint.att = {{TxnId{0, 1}, 1}};
  end.checkpoint.dpt = {{2, 1}, {5, 3}};
  wal.Append(end);
  wal.SetMaster(b);

  Wal loaded;
  ASSERT_TRUE(loaded.Deserialize(wal.Serialize()).ok());
  EXPECT_EQ(loaded.master(), b);
  const WalRecord& got = loaded.records()[2];
  EXPECT_EQ(got.kind, WalRecordKind::kCheckpointEnd);
  EXPECT_EQ(got.prev_lsn, b);
  ASSERT_EQ(got.checkpoint.att.size(), 1u);
  EXPECT_EQ(got.checkpoint.att[0].first, (TxnId{0, 1}));
  ASSERT_EQ(got.checkpoint.dpt.size(), 2u);
  EXPECT_EQ(got.checkpoint.dpt[1].first, 5u);
  EXPECT_EQ(got.checkpoint.dpt[1].second, 3u);

  // Tolerant file round trip preserves the master pointer too.
  std::string path = ::testing::TempDir() + "/rainbow_wal_ckpt_test.bin";
  ASSERT_TRUE(wal.SaveToFile(path).ok());
  Wal from_file;
  size_t dropped = 1;
  ASSERT_TRUE(from_file.LoadFromFile(path, &dropped).ok());
  EXPECT_EQ(dropped, 0u);
  EXPECT_EQ(from_file.master(), b);
  std::remove(path.c_str());
}

TEST(WalTest, IsPreparedUndecidedTracksAppendsAndReloads) {
  Wal wal;
  TxnId txn{1, 5};
  EXPECT_FALSE(wal.IsPreparedUndecided(txn));
  wal.Append(Prepared(txn, {}, {0, 1}));
  EXPECT_TRUE(wal.IsPreparedUndecided(txn));

  // The index survives a serialize/deserialize cycle.
  Wal loaded;
  ASSERT_TRUE(loaded.Deserialize(wal.Serialize()).ok());
  EXPECT_TRUE(loaded.IsPreparedUndecided(txn));

  wal.Append(WalRecord::Protocol(WalRecordKind::kAbortDecision, txn, 0, {}, {},
                                 false));
  EXPECT_FALSE(wal.IsPreparedUndecided(txn));
}

TEST(WalTest, SaveToFileReportsFlushErrors) {
  // Regression: SaveToFile checked fwrite's count but never fflush/
  // ferror, so a full disk (writes buffered, error surfacing only at
  // flush) reported success while the file was torn. /dev/full fails
  // exactly that way on Linux.
  if (!std::filesystem::exists("/dev/full")) {
    GTEST_SKIP() << "/dev/full not available";
  }
  Wal wal;
  wal.Append(Prepared(TxnId{0, 1}, {{1, 10, 1}}, {0, 1}));
  Status s = wal.SaveToFile("/dev/full");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

// --- head truncation -------------------------------------------------------

WalRecord Decision(WalRecordKind kind, TxnId txn,
                   std::vector<SiteId> participants = {}) {
  return WalRecord::Protocol(kind, txn, txn.home, {}, std::move(participants),
                             false);
}

TEST(WalTest, TruncateBeforeKeepsLsnsStable) {
  Wal wal;
  TxnId t1{0, 1}, t2{0, 2};
  Lsn l1 = wal.Append(Prepared(t1, {{1, 10, 1}}, {0, 1}));
  wal.Append(Decision(WalRecordKind::kCommitDecision, t1));
  wal.Append(Decision(WalRecordKind::kApplied, t1));
  Lsn l4 = wal.Append(Prepared(t2, {{2, 20, 2}}, {0, 1}));
  ASSERT_EQ(l1, 1u);
  ASSERT_EQ(l4, 4u);

  EXPECT_EQ(wal.TruncateBefore(4), 3u);
  EXPECT_EQ(wal.base(), 3u);
  EXPECT_EQ(wal.size(), 1u);
  EXPECT_EQ(wal.LastLsn(), 4u);
  EXPECT_EQ(wal.NextLsn(), 5u);
  EXPECT_FALSE(wal.Contains(3));
  ASSERT_TRUE(wal.Contains(4));
  EXPECT_EQ(wal.At(4).txn, t2);

  // Appends keep numbering from the pre-truncation LSN space.
  Lsn l5 = wal.Append(Decision(WalRecordKind::kAbortDecision, t2));
  EXPECT_EQ(l5, 5u);
  ASSERT_TRUE(wal.Contains(5));

  // Truncating at or below the current head is a no-op.
  EXPECT_EQ(wal.TruncateBefore(2), 0u);
  EXPECT_EQ(wal.TruncateBefore(4), 0u);
  EXPECT_EQ(wal.base(), 3u);
}

TEST(WalTest, ScanAnswersFromDigestAfterTruncation) {
  // Close a transaction completely (prepared -> commit -> applied),
  // truncate its records away, and the scan-backed recovery queries
  // must answer exactly as before: decided_cache_ rebuilds depend on
  // this surviving checkpoint-time head reclamation.
  Wal wal;
  TxnId closed{0, 1}, open{0, 2};
  wal.Append(Prepared(closed, {{1, 10, 1}}, {0, 1}));
  wal.Append(Decision(WalRecordKind::kCommitDecision, closed));
  wal.Append(Decision(WalRecordKind::kApplied, closed));
  Lsn open_first = wal.Append(Prepared(open, {{2, 20, 2}}, {0, 1}));

  // The open (in-doubt) transaction pins the protocol barrier.
  EXPECT_EQ(wal.ProtocolBarrier(), open_first);
  wal.TruncateBefore(wal.ProtocolBarrier());
  EXPECT_EQ(wal.base(), open_first - 1);

  auto scan = wal.Scan();
  ASSERT_TRUE(scan.contains(closed));
  EXPECT_TRUE(scan[closed].prepared);
  EXPECT_TRUE(scan[closed].decided);
  EXPECT_TRUE(scan[closed].commit);
  EXPECT_TRUE(scan[closed].applied);
  EXPECT_FALSE(wal.IsPreparedUndecided(closed));

  // The in-doubt txn kept its full prepared record.
  auto doubts = wal.InDoubt();
  ASSERT_EQ(doubts.size(), 1u);
  EXPECT_EQ(doubts[0].txn, open);
  ASSERT_EQ(doubts[0].writes.size(), 1u);
  EXPECT_EQ(doubts[0].writes[0].value, 20);

  // And the digest survives a save/load round trip (v4 header).
  Wal loaded;
  ASSERT_TRUE(loaded.Deserialize(wal.Serialize()).ok());
  EXPECT_EQ(loaded.base(), wal.base());
  EXPECT_EQ(loaded.LastLsn(), wal.LastLsn());
  auto reloaded = loaded.Scan();
  ASSERT_TRUE(reloaded.contains(closed));
  EXPECT_TRUE(reloaded[closed].decided);
  EXPECT_TRUE(reloaded[closed].commit);
  EXPECT_TRUE(reloaded[closed].applied);
  ASSERT_EQ(loaded.InDoubt().size(), 1u);
  EXPECT_EQ(loaded.InDoubt()[0].txn, open);
}

TEST(WalTest, ProtocolBarrierTracksOpenTransactions) {
  Wal wal;
  TxnId coord{0, 1}, part{1, 2};
  EXPECT_EQ(wal.ProtocolBarrier(), wal.NextLsn());

  // Coordinator decision with a participant list: open until kEnd.
  Lsn dec = wal.Append(Decision(WalRecordKind::kCommitDecision, coord, {1, 2}));
  EXPECT_EQ(wal.ProtocolBarrier(), dec);

  // Participant prepare: open until decided AND applied.
  Lsn prep = wal.Append(Prepared(part, {{3, 30, 3}}, {0, 1}));
  EXPECT_EQ(wal.ProtocolBarrier(), dec);

  wal.Append(Decision(WalRecordKind::kEnd, coord));
  EXPECT_EQ(wal.ProtocolBarrier(), prep);  // coordinator txn closed

  wal.Append(Decision(WalRecordKind::kAbortDecision, part));
  EXPECT_EQ(wal.ProtocolBarrier(), prep);  // decided but not applied
  wal.Append(Decision(WalRecordKind::kApplied, part));
  EXPECT_EQ(wal.ProtocolBarrier(), wal.NextLsn());  // everything closed
}

TEST(WalTest, TruncationClearsDanglingMaster) {
  // A direct truncation past the master (storage-engine barriers never
  // do this, but tools can) must not leave master() naming a record
  // that no longer exists.
  Wal wal;
  WalRecord begin;
  begin.kind = WalRecordKind::kCheckpointBegin;
  Lsn b = wal.Append(begin);
  WalRecord end;
  end.kind = WalRecordKind::kCheckpointEnd;
  end.prev_lsn = b;
  wal.Append(end);
  wal.Append(Prepared(TxnId{0, 9}, {}, {0}));
  wal.SetMaster(b);

  wal.TruncateBefore(3);
  EXPECT_EQ(wal.base(), 2u);
  EXPECT_EQ(wal.master(), kNoLsn);
}

TEST(WalTest, TruncatedFileRoundTripKeepsMasterAndTornTailRules) {
  Wal wal;
  wal.Append(Prepared(TxnId{0, 1}, {{1, 10, 1}}, {0, 1}));
  wal.Append(Decision(WalRecordKind::kCommitDecision, TxnId{0, 1}));
  wal.Append(Decision(WalRecordKind::kApplied, TxnId{0, 1}));
  WalRecord begin;
  begin.kind = WalRecordKind::kCheckpointBegin;
  Lsn b = wal.Append(begin);
  WalRecord end;
  end.kind = WalRecordKind::kCheckpointEnd;
  end.prev_lsn = b;
  wal.Append(end);
  wal.SetMaster(b);
  wal.TruncateBefore(b);
  ASSERT_EQ(wal.base(), b - 1);

  std::vector<uint8_t> good = wal.Serialize();
  Wal loaded;
  ASSERT_TRUE(loaded.Deserialize(good).ok());
  EXPECT_EQ(loaded.master(), b);
  EXPECT_EQ(loaded.base(), b - 1);
  ASSERT_TRUE(loaded.Contains(b));
  EXPECT_EQ(loaded.At(b).kind, WalRecordKind::kCheckpointBegin);

  // Strict load still rejects every proper prefix of a truncated log.
  for (size_t len = 0; len < good.size(); ++len) {
    Wal target;
    std::vector<uint8_t> cut(good.begin(), good.begin() + len);
    EXPECT_FALSE(target.Deserialize(cut).ok()) << "prefix length " << len;
  }

  // Tolerant load of a torn final record drops it but keeps base/master.
  std::vector<uint8_t> torn = good;
  torn.back() ^= 0xff;
  Wal tolerant;
  size_t dropped = 0;
  ASSERT_TRUE(tolerant.DeserializeTolerant(torn, &dropped).ok());
  EXPECT_EQ(dropped, 1u);
  EXPECT_EQ(tolerant.base(), b - 1);
  // The dropped record was the checkpoint end; the master still points
  // at a retained begin record (clamping never resurrects it).
  EXPECT_EQ(tolerant.master(), b);
}

TEST(WalTest, PreCommittedTracked) {
  Wal wal;
  TxnId txn{1, 4};
  wal.Append(Prepared(txn, {}, {0, 1}, /*three_phase=*/true));
  wal.Append(
      WalRecord::Protocol(WalRecordKind::kPreCommitted, txn, 0, {}, {}, true));
  auto scan = wal.Scan();
  EXPECT_TRUE(scan[txn].precommitted);
  ASSERT_EQ(wal.InDoubt().size(), 1u);
  EXPECT_TRUE(wal.InDoubt()[0].three_phase);
}

}  // namespace
}  // namespace rainbow
