#include <gtest/gtest.h>

#include <cstdio>

#include "storage/local_store.h"
#include "storage/wal.h"

namespace rainbow {
namespace {

TEST(LocalStoreTest, LoadAndGet) {
  LocalStore store;
  store.Load(3, 42);
  EXPECT_TRUE(store.Has(3));
  EXPECT_FALSE(store.Has(4));
  auto copy = store.Get(3);
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(copy->value, 42);
  EXPECT_EQ(copy->version, 0u);
  EXPECT_FALSE(store.Get(4).ok());
}

TEST(LocalStoreTest, ApplyAdvancesVersion) {
  LocalStore store;
  store.Load(1, 0);
  EXPECT_TRUE(store.Apply(1, 10, 1));
  EXPECT_TRUE(store.Apply(1, 20, 2));
  auto copy = store.Get(1);
  EXPECT_EQ(copy->value, 20);
  EXPECT_EQ(copy->version, 2u);
}

TEST(LocalStoreTest, StaleApplyIgnored) {
  LocalStore store;
  store.Load(1, 0);
  EXPECT_TRUE(store.Apply(1, 10, 2));
  EXPECT_FALSE(store.Apply(1, 99, 2));  // duplicate version
  EXPECT_FALSE(store.Apply(1, 99, 1));  // older version
  EXPECT_EQ(store.Get(1)->value, 10);
}

TEST(LocalStoreTest, ApplyToUnknownItemFails) {
  LocalStore store;
  EXPECT_FALSE(store.Apply(7, 1, 1));
}

TEST(LocalStoreTest, AdoptIfNewer) {
  LocalStore store;
  store.Load(1, 5);
  EXPECT_TRUE(store.AdoptIfNewer(1, 50, 3));
  EXPECT_FALSE(store.AdoptIfNewer(1, 40, 2));  // older
  EXPECT_FALSE(store.AdoptIfNewer(9, 1, 1));   // not hosted
  EXPECT_EQ(store.Get(1)->value, 50);
}

WalRecord Prepared(TxnId txn, std::vector<WalRecord::Write> writes,
                   std::vector<SiteId> participants, bool three_phase = false) {
  WalRecord r;
  r.kind = WalRecordKind::kPrepared;
  r.txn = txn;
  r.coordinator = txn.home;
  r.writes = std::move(writes);
  r.participants = std::move(participants);
  r.three_phase = three_phase;
  return r;
}

TEST(WalTest, ScanSummarizesPerTxn) {
  Wal wal;
  TxnId t1{0, 1}, t2{0, 2};
  wal.Append(Prepared(t1, {{1, 10, 1}}, {0, 1}));
  wal.Append(WalRecord{WalRecordKind::kCommitDecision, t1, 0, {}, {}, false});
  wal.Append(WalRecord{WalRecordKind::kApplied, t1, 0, {}, {}, false});
  wal.Append(Prepared(t2, {}, {0, 2}));

  auto scan = wal.Scan();
  ASSERT_TRUE(scan.contains(t1));
  EXPECT_TRUE(scan[t1].prepared);
  EXPECT_TRUE(scan[t1].decided);
  EXPECT_TRUE(scan[t1].commit);
  EXPECT_TRUE(scan[t1].applied);
  EXPECT_FALSE(scan[t1].ended);
  EXPECT_TRUE(scan[t2].prepared);
  EXPECT_FALSE(scan[t2].decided);
}

TEST(WalTest, InDoubtFindsPreparedUndecided) {
  Wal wal;
  TxnId decided{0, 1}, in_doubt{0, 2};
  wal.Append(Prepared(decided, {}, {0}));
  wal.Append(WalRecord{WalRecordKind::kAbortDecision, decided, 0, {}, {},
                       false});
  wal.Append(Prepared(in_doubt, {{4, 9, 2}}, {0, 1}));

  auto doubts = wal.InDoubt();
  ASSERT_EQ(doubts.size(), 1u);
  EXPECT_EQ(doubts[0].txn, in_doubt);
  ASSERT_EQ(doubts[0].writes.size(), 1u);
  EXPECT_EQ(doubts[0].writes[0].item, 4u);
  EXPECT_EQ(doubts[0].writes[0].version, 2u);
}

TEST(WalTest, DecidedUnendedIsCoordinatorOnly) {
  Wal wal;
  TxnId coord_txn{0, 1}, part_txn{2, 7}, closed{0, 3};
  // Coordinator decision (has participants), never ended.
  wal.Append(WalRecord{WalRecordKind::kCommitDecision, coord_txn, 0, {},
                       {0, 1, 2}, false});
  // Participant decision (no participants): not ours to finish.
  wal.Append(WalRecord{WalRecordKind::kCommitDecision, part_txn, 2, {}, {},
                       false});
  // Coordinator decision that was ended.
  wal.Append(WalRecord{WalRecordKind::kAbortDecision, closed, 0, {}, {0, 1},
                       false});
  wal.Append(WalRecord{WalRecordKind::kEnd, closed, 0, {}, {}, false});

  auto open = wal.DecidedUnended();
  ASSERT_EQ(open.size(), 1u);
  EXPECT_EQ(open[0].txn, coord_txn);
  EXPECT_TRUE(open[0].commit);
  EXPECT_EQ(open[0].participants, (std::vector<SiteId>{0, 1, 2}));
}

TEST(WalTest, CoordinatorAlsoParticipant) {
  // A site that prepared (as participant) AND logged the coordinator
  // decision must still re-propagate the decision after recovery.
  Wal wal;
  TxnId txn{0, 1};
  wal.Append(Prepared(txn, {{1, 5, 1}}, {0, 1}));
  wal.Append(
      WalRecord{WalRecordKind::kCommitDecision, txn, 0, {}, {0, 1}, false});
  auto open = wal.DecidedUnended();
  ASSERT_EQ(open.size(), 1u);
  EXPECT_EQ(open[0].txn, txn);
  // And it is not in doubt (the decision is known).
  EXPECT_TRUE(wal.InDoubt().empty());
}

TEST(WalTest, SerializeRoundTrip) {
  Wal wal;
  TxnId t1{0, 1}, t2{3, 9};
  wal.Append(Prepared(t1, {{1, 10, 1}, {2, -5, 7}}, {0, 1, 2}, true));
  wal.Append(WalRecord{WalRecordKind::kCommitDecision, t1, 0, {}, {0, 1},
                       false});
  wal.Append(WalRecord{WalRecordKind::kApplied, t1, 0, {}, {}, false});
  wal.Append(Prepared(t2, {}, {3}));
  wal.Append(WalRecord{WalRecordKind::kEnd, t1, 0, {}, {}, false});

  Wal loaded;
  ASSERT_TRUE(loaded.Deserialize(wal.Serialize()).ok());
  ASSERT_EQ(loaded.size(), wal.size());
  for (size_t i = 0; i < wal.size(); ++i) {
    EXPECT_EQ(loaded.records()[i].kind, wal.records()[i].kind);
    EXPECT_EQ(loaded.records()[i].txn, wal.records()[i].txn);
    EXPECT_EQ(loaded.records()[i].participants,
              wal.records()[i].participants);
    EXPECT_EQ(loaded.records()[i].writes.size(),
              wal.records()[i].writes.size());
  }
  // Derived views agree too.
  EXPECT_EQ(loaded.InDoubt().size(), wal.InDoubt().size());
  EXPECT_EQ(loaded.DecidedUnended().size(), wal.DecidedUnended().size());
  // Record contents survive.
  EXPECT_EQ(loaded.records()[0].writes[1].value, -5);
  EXPECT_EQ(loaded.records()[0].writes[1].version, 7u);
  EXPECT_TRUE(loaded.records()[0].three_phase);
}

TEST(WalTest, DeserializeRejectsCorruption) {
  Wal wal;
  wal.Append(Prepared(TxnId{0, 1}, {{1, 2, 3}}, {0, 1}));
  std::vector<uint8_t> good = wal.Serialize();

  Wal target;
  // Bad magic.
  std::vector<uint8_t> bad = good;
  bad[0] ^= 0xff;
  EXPECT_FALSE(target.Deserialize(bad).ok());
  // Truncations at every length must fail cleanly.
  for (size_t len = 0; len < good.size(); ++len) {
    std::vector<uint8_t> cut(good.begin(),
                             good.begin() + static_cast<ptrdiff_t>(len));
    EXPECT_FALSE(target.Deserialize(cut).ok()) << "length " << len;
  }
  // Trailing garbage.
  bad = good;
  bad.push_back(0);
  EXPECT_FALSE(target.Deserialize(bad).ok());
  // A failed load leaves the target unchanged.
  ASSERT_TRUE(target.Deserialize(good).ok());
  EXPECT_EQ(target.size(), 1u);
  EXPECT_FALSE(target.Deserialize(bad).ok());
  EXPECT_EQ(target.size(), 1u);
}

TEST(WalTest, FileRoundTrip) {
  Wal wal;
  wal.Append(Prepared(TxnId{1, 2}, {{4, 44, 2}}, {0, 1}));
  wal.Append(WalRecord{WalRecordKind::kAbortDecision, TxnId{1, 2}, 0, {}, {},
                       false});
  std::string path = ::testing::TempDir() + "/rainbow_wal_test.bin";
  ASSERT_TRUE(wal.SaveToFile(path).ok());
  Wal loaded;
  ASSERT_TRUE(loaded.LoadFromFile(path).ok());
  EXPECT_EQ(loaded.size(), 2u);
  auto scan = loaded.Scan();
  const auto& st = scan[TxnId{1, 2}];
  EXPECT_TRUE(st.prepared);
  EXPECT_TRUE(st.decided);
  EXPECT_FALSE(st.commit);
  EXPECT_FALSE(loaded.LoadFromFile(path + ".missing").ok());
  std::remove(path.c_str());
}

TEST(WalTest, PreCommittedTracked) {
  Wal wal;
  TxnId txn{1, 4};
  wal.Append(Prepared(txn, {}, {0, 1}, /*three_phase=*/true));
  wal.Append(
      WalRecord{WalRecordKind::kPreCommitted, txn, 0, {}, {}, true});
  auto scan = wal.Scan();
  EXPECT_TRUE(scan[txn].precommitted);
  ASSERT_EQ(wal.InDoubt().size(), 1u);
  EXPECT_TRUE(wal.InDoubt()[0].three_phase);
}

}  // namespace
}  // namespace rainbow
