#include <gtest/gtest.h>

#include "core/session.h"
#include "core/system.h"
#include "fault/fault_injector.h"
#include "workload/workload.h"

namespace rainbow {
namespace {

SystemConfig SmallSystem(uint32_t sites = 3, int items = 10,
                         int replication = 3) {
  SystemConfig cfg;
  cfg.seed = 1234;
  cfg.num_sites = sites;
  cfg.record_history = true;
  cfg.AddUniformItems(items, 100, replication);
  return cfg;
}

TEST(SystemTest, CreateValidatesConfig) {
  SystemConfig cfg;  // no items
  cfg.num_sites = 2;
  auto sys = RainbowSystem::Create(cfg);
  EXPECT_FALSE(sys.ok());
}

TEST(SystemTest, SingleTransactionCommits) {
  auto sys = RainbowSystem::Create(SmallSystem());
  ASSERT_TRUE(sys.ok()) << sys.status();
  RainbowSystem& s = **sys;

  TxnProgram p;
  p.ops = {Op::Read(0), Op::Write(1, 55)};
  TxnOutcome outcome;
  bool done = false;
  ASSERT_TRUE(s.Submit(0, p, [&](const TxnOutcome& o) {
                 outcome = o;
                 done = true;
               }).ok());
  s.RunToQuiescence(1'000'000);
  ASSERT_TRUE(done);
  EXPECT_TRUE(outcome.committed) << outcome.ToString();
  ASSERT_EQ(outcome.reads.size(), 1u);
  EXPECT_EQ(outcome.reads[0], 100);  // initial value

  auto latest = s.LatestCommitted(1);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->value, 55);
  EXPECT_EQ(latest->version, 1u);
}

TEST(SystemTest, IncrementReadsThenWrites) {
  auto sys = RainbowSystem::Create(SmallSystem());
  ASSERT_TRUE(sys.ok()) << sys.status();
  RainbowSystem& s = **sys;

  TxnProgram p;
  p.ops = {Op::Increment(0, 7)};
  bool committed = false;
  ASSERT_TRUE(
      s.Submit(1, p, [&](const TxnOutcome& o) { committed = o.committed; })
          .ok());
  s.RunToQuiescence(1'000'000);
  EXPECT_TRUE(committed);
  auto latest = s.LatestCommitted(0);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->value, 107);
}

TEST(SystemTest, SequentialTransactionsSerializable) {
  auto sys = RainbowSystem::Create(SmallSystem());
  ASSERT_TRUE(sys.ok()) << sys.status();
  RainbowSystem& s = **sys;
  for (int i = 0; i < 20; ++i) {
    TxnProgram p;
    p.ops = {Op::Increment(static_cast<ItemId>(i % 5), 1)};
    ASSERT_TRUE(s.Submit(static_cast<SiteId>(i % 3), p, nullptr).ok());
    s.RunToQuiescence(1'000'000);
  }
  EXPECT_EQ(s.monitor().committed(), 20u);
  EXPECT_TRUE(
      CheckConflictSerializable(s.history().transactions()).ok());
  EXPECT_TRUE(s.CheckReplicaConsistency(false).ok());
}

TEST(SystemTest, WeightedQuorumSingleSiteCanDecide) {
  // Site 0 holds 3 of 5 votes: with R=W=3 it alone forms both quorums,
  // so transactions homed there never need the other copies.
  SystemConfig cfg;
  cfg.seed = 5;
  cfg.num_sites = 3;
  ItemConfig item;
  item.name = "heavy";
  item.initial = 7;
  item.copies = {0, 1, 2};
  item.votes = {3, 1, 1};
  item.read_quorum = 3;
  item.write_quorum = 3;
  cfg.items.push_back(item);
  auto sys = RainbowSystem::Create(cfg);
  ASSERT_TRUE(sys.ok()) << sys.status();
  RainbowSystem& s = **sys;
  // Even with both minor copies down, the heavy site commits.
  s.CrashSite(1);
  s.CrashSite(2);
  bool committed = false;
  ASSERT_TRUE(s.Submit(0, TxnProgram{{Op::Increment(0, 1)}, ""},
                       [&](const TxnOutcome& o) { committed = o.committed; })
                  .ok());
  s.RunToQuiescence(1'000'000);
  EXPECT_TRUE(committed);
  EXPECT_EQ(s.site(0)->store().Get(0)->value, 8);
}

TEST(SessionTest, ClosedLoopWorkloadDrains) {
  SystemConfig sys_cfg = SmallSystem(4, 200, 3);
  WorkloadConfig wl;
  wl.num_txns = 100;
  wl.mpl = 4;
  SessionOptions opt;
  opt.check_serializability = true;
  auto r = RunSession(sys_cfg, wl, opt);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->committed + r->aborted, 100u);
  EXPECT_GT(r->committed, 80u);
  EXPECT_GT(r->net_messages, 0u);
  EXPECT_GT(r->throughput_tps, 0.0);
}

TEST(SessionTest, CrashAndRecoveryWithQuorum) {
  SystemConfig sys_cfg = SmallSystem(5, 200, 5);
  WorkloadConfig wl;
  wl.num_txns = 150;
  wl.mpl = 6;
  SessionOptions opt;
  opt.faults = {FaultEvent::Crash(Millis(50), 2),
                FaultEvent::Recover(Millis(400), 2)};
  auto r = RunSession(sys_cfg, wl, opt);
  ASSERT_TRUE(r.ok()) << r.status();
  // Quorum consensus keeps committing through a single-site outage.
  EXPECT_GT(r->committed, 110u);
}

}  // namespace
}  // namespace rainbow
