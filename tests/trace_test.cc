// Tests for the structured per-transaction tracing subsystem: the
// TraceCollector itself, the ASCII / Chrome trace_event exporters, and
// the determinism gate — two same-seed runs of the shipped classroom
// configuration must produce byte-identical exports.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "common/trace.h"
#include "core/system.h"
#include "stats/progress_monitor.h"
#include "stats/trace_export.h"
#include "workload/workload.h"

namespace rainbow {
namespace {

TraceRecord Rec(SimTime t, TraceEventKind k, TxnId txn,
                SiteId site = kInvalidSite) {
  TraceRecord r;
  r.time = t;
  r.kind = k;
  r.txn = txn;
  r.site = site;
  return r;
}

TEST(TraceCollectorTest, OffByDefaultAndEmitIsNoOp) {
  TraceCollector c;
  EXPECT_FALSE(c.enabled());
  c.Emit(Rec(1, TraceEventKind::kTxnSubmit, TxnId{0, 1}));
  EXPECT_TRUE(c.records().empty());
}

TEST(TraceCollectorTest, DetailLevels) {
  TraceCollector c;
  c.set_detail(TraceDetail::kProtocol);
  EXPECT_TRUE(c.enabled());
  EXPECT_FALSE(c.full());
  c.set_detail(TraceDetail::kFull);
  EXPECT_TRUE(c.full());
}

TEST(TraceCollectorTest, FiltersAndTransactionOrder) {
  TraceCollector c;
  c.set_detail(TraceDetail::kProtocol);
  TxnId a{0, 1}, b{1, 1};
  c.Emit(Rec(10, TraceEventKind::kTxnSubmit, a, 0));
  c.Emit(Rec(11, TraceEventKind::kTxnSubmit, b, 1));
  c.Emit(Rec(12, TraceEventKind::kCcBlock, a, 2));
  c.Emit(Rec(13, TraceEventKind::kTxnCommit, a, 0));
  c.Emit(Rec(14, TraceEventKind::kTxnAbort, b, 1));

  EXPECT_EQ(c.records().size(), 5u);
  EXPECT_EQ(c.ForTxn(a).size(), 3u);
  EXPECT_EQ(c.ForTxn(b).size(), 2u);
  EXPECT_EQ(c.CountKind(TraceEventKind::kTxnSubmit), 2u);
  EXPECT_EQ(c.CountKind(TraceEventKind::kCcBlock), 1u);
  auto txns = c.Transactions();
  ASSERT_EQ(txns.size(), 2u);
  EXPECT_EQ(txns[0], a);  // ordered by first appearance
  EXPECT_EQ(txns[1], b);
}

TEST(TraceCollectorTest, CapacityEvictsOlderHalf) {
  TraceCollector c;
  c.set_detail(TraceDetail::kProtocol);
  c.set_capacity(100);
  for (int i = 0; i < 150; ++i) {
    c.Emit(Rec(i, TraceEventKind::kMsgSend, TxnId{0, 1}));
  }
  EXPECT_LE(c.records().size(), 100u);
  EXPECT_EQ(c.dropped(), 50u);
  // The survivors are the newest records.
  EXPECT_EQ(c.records().back().time, 149);
}

TEST(TraceDiffTest, IdenticalTexts) {
  TraceDiff d = DiffTraceText("a\nb\nc\n", "a\nb\nc\n");
  EXPECT_TRUE(d.identical);
  EXPECT_EQ(d.left_lines, 3u);
  EXPECT_NE(d.Describe().find("identical"), std::string::npos);
}

TEST(TraceDiffTest, ReportsFirstDivergingLine) {
  TraceDiff d = DiffTraceText("a\nb\nc\n", "a\nX\nc\n");
  EXPECT_FALSE(d.identical);
  EXPECT_EQ(d.line, 2u);
  EXPECT_EQ(d.left, "b");
  EXPECT_EQ(d.right, "X");
  EXPECT_EQ(d.left_lines, 3u);
  EXPECT_EQ(d.right_lines, 3u);
}

TEST(TraceDiffTest, LengthMismatch) {
  TraceDiff d = DiffTraceText("a\nb\n", "a\n");
  EXPECT_FALSE(d.identical);
  EXPECT_EQ(d.line, 2u);
  EXPECT_EQ(d.right, "<end of input>");
}

class TracedRunTest : public ::testing::Test {
 protected:
  static SystemConfig BaseConfig() {
    SystemConfig cfg;
    cfg.seed = 4242;
    cfg.num_sites = 3;
    cfg.AddFullyReplicatedItems(8, 100);
    return cfg;
  }

  static WorkloadConfig BaseWorkload() {
    WorkloadConfig wl;
    wl.seed = 4242;
    wl.num_txns = 25;
    wl.mpl = 4;
    return wl;
  }

  /// Runs a traced workload and returns the finished system.
  static std::unique_ptr<RainbowSystem> RunTraced(TraceDetail detail) {
    SystemConfig cfg = BaseConfig();
    cfg.trace_enabled = true;
    cfg.trace_detail = detail;
    auto sys = RainbowSystem::Create(cfg);
    EXPECT_TRUE(sys.ok()) << sys.status();
    WorkloadGenerator gen(sys->get(), BaseWorkload());
    gen.Run();
    (*sys)->RunToQuiescence();
    return std::move(*sys);
  }
};

TEST_F(TracedRunTest, DisabledTracingRecordsNothing) {
  SystemConfig cfg = BaseConfig();
  cfg.trace_enabled = false;
  auto sys = RainbowSystem::Create(cfg);
  ASSERT_TRUE(sys.ok());
  WorkloadGenerator gen(sys->get(), BaseWorkload());
  gen.Run();
  (*sys)->RunToQuiescence();
  EXPECT_TRUE((*sys)->collector().records().empty());
}

TEST_F(TracedRunTest, ProtocolDetailCapturesLifecycle) {
  auto sys = RunTraced(TraceDetail::kProtocol);
  const TraceCollector& c = sys->collector();
  EXPECT_GT(c.CountKind(TraceEventKind::kTxnSubmit), 0u);
  EXPECT_GT(c.CountKind(TraceEventKind::kQuorumPlan), 0u);
  EXPECT_GT(c.CountKind(TraceEventKind::kCcGrant), 0u);
  EXPECT_GT(c.CountKind(TraceEventKind::kVote), 0u);
  EXPECT_GT(c.CountKind(TraceEventKind::kDecision), 0u);
  EXPECT_GT(c.CountKind(TraceEventKind::kTxnCommit), 0u);
  // Message-level events are reserved for full detail.
  EXPECT_EQ(c.CountKind(TraceEventKind::kMsgSend), 0u);
  EXPECT_EQ(c.CountKind(TraceEventKind::kMsgRecv), 0u);

  // Every committed transaction's timeline starts with its submit.
  for (TxnId txn : c.Transactions()) {
    auto events = c.ForTxn(txn);
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(events.front().kind, TraceEventKind::kTxnSubmit)
        << txn.ToString();
    for (size_t i = 1; i < events.size(); ++i) {
      EXPECT_GE(events[i].time, events[i - 1].time) << txn.ToString();
    }
  }
}

TEST_F(TracedRunTest, FullDetailAddsMessageEvents) {
  auto sys = RunTraced(TraceDetail::kFull);
  const TraceCollector& c = sys->collector();
  EXPECT_GT(c.CountKind(TraceEventKind::kMsgSend), 0u);
  EXPECT_GT(c.CountKind(TraceEventKind::kMsgRecv), 0u);
  EXPECT_GT(c.CountKind(TraceEventKind::kRpcAttempt), 0u);
}

TEST_F(TracedRunTest, AsciiRendersContainEvents) {
  auto sys = RunTraced(TraceDetail::kProtocol);
  const TraceCollector& c = sys->collector();
  ASSERT_FALSE(c.Transactions().empty());
  TxnId first = c.Transactions().front();

  std::string timeline = RenderTxnTimeline(c, first);
  EXPECT_NE(timeline.find(first.ToString()), std::string::npos);
  EXPECT_NE(timeline.find("txn_submit"), std::string::npos);

  std::string summary = RenderTraceSummary(c);
  EXPECT_NE(summary.find(first.ToString()), std::string::npos);
  EXPECT_NE(summary.find("outcome"), std::string::npos);

  std::string window = ProgressMonitor::RenderExecutionWindow(c, 10);
  EXPECT_NE(window.find("execution window"), std::string::npos);
}

TEST_F(TracedRunTest, ChromeTraceJsonIsWellFormed) {
  auto sys = RunTraced(TraceDetail::kFull);
  std::string json = ChromeTraceJson(sys->collector());
  // Array format, one event per line, with the metadata the viewers
  // need to label processes (transactions) and threads (sites).
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find(R"("name":"process_name")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"thread_name")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"system")"), std::string::npos);
  EXPECT_NE(json.find(R"("ph":"i")"), std::string::npos);
  EXPECT_NE(json.find(R"("s":"t")"), std::string::npos);
  EXPECT_NE(json.find("txn_submit"), std::string::npos);

  // Balanced braces line by line (each line is one complete object).
  std::istringstream lines(json);
  std::string line;
  size_t events = 0;
  while (std::getline(lines, line)) {
    if (line == "[" || line == "]") continue;
    int depth = 0;
    bool in_string = false;
    for (size_t i = 0; i < line.size(); ++i) {
      char ch = line[i];
      if (ch == '"' && (i == 0 || line[i - 1] != '\\')) in_string = !in_string;
      if (in_string) continue;
      if (ch == '{') ++depth;
      if (ch == '}') --depth;
    }
    EXPECT_EQ(depth, 0) << "unbalanced event line: " << line;
    ++events;
  }
  EXPECT_GT(events, sys->collector().records().size());
}

TEST_F(TracedRunTest, SameSeedRunsExportByteIdentical) {
  auto diff = SameSeedTraceDiff(BaseConfig(), BaseWorkload());
  ASSERT_TRUE(diff.ok()) << diff.status();
  EXPECT_TRUE(diff->identical) << diff->Describe();
  EXPECT_GT(diff->left_lines, 0u);
}

TEST_F(TracedRunTest, DifferentSeedsActuallyDiverge) {
  // Sanity check that the diff is not vacuously identical.
  auto first = RunAndExportChromeTrace(BaseConfig(), BaseWorkload());
  SystemConfig other = BaseConfig();
  other.seed = 4243;
  auto second = RunAndExportChromeTrace(other, BaseWorkload());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(DiffTraceText(*first, *second).identical);
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(TraceDeterminismTest, ClassroomDefaultConfigIsByteIdentical) {
  // The acceptance gate: the shipped classroom configuration, run twice
  // from the same seed, exports byte-identical Chrome traces. CI runs
  // the same check through `trace_explorer --selfdiff`.
  std::string text = ReadFileOrEmpty(std::string(RAINBOW_SOURCE_DIR) +
                                     "/configs/classroom_default.rainbow");
  ASSERT_FALSE(text.empty());
  auto cfg = SystemConfig::FromText(text);
  ASSERT_TRUE(cfg.ok()) << cfg.status();

  WorkloadConfig wl;
  wl.seed = cfg->seed;
  wl.num_txns = 30;
  wl.mpl = 4;
  wl.max_retries = 3;

  auto diff = SameSeedTraceDiff(*cfg, wl);
  ASSERT_TRUE(diff.ok()) << diff.status();
  EXPECT_TRUE(diff->identical) << diff->Describe();
}

}  // namespace
}  // namespace rainbow
