#include <gtest/gtest.h>

#include <optional>

#include "cc/tso_manager.h"

namespace rainbow {
namespace {

TxnId T(uint64_t n) { return TxnId{0, n}; }
TxnTimestamp Ts(int64_t n) { return TxnTimestamp{n, 0}; }

struct Probe {
  std::optional<CcGrant> grant;
  CcCallback cb() {
    return [this](const CcGrant& g) { grant = g; };
  }
  bool granted() const { return grant.has_value() && grant->granted; }
  bool denied() const { return grant.has_value() && !grant->granted; }
  bool pending() const { return !grant.has_value(); }
};

TEST(TsoTest, ReadsAndWritesInOrderGranted) {
  TsoManager tso;
  Probe r1, w2, r3;
  tso.RequestRead(T(1), Ts(1), 7, r1.cb());
  EXPECT_TRUE(r1.granted());
  tso.RequestWrite(T(2), Ts(2), 7, w2.cb());
  EXPECT_TRUE(w2.granted());
  tso.Finish(T(2), true);
  tso.RequestRead(T(3), Ts(3), 7, r3.cb());
  EXPECT_TRUE(r3.granted());
}

TEST(TsoTest, LateReadRejected) {
  TsoManager tso;
  Probe w, r;
  tso.RequestWrite(T(5), Ts(5), 7, w.cb());
  tso.Finish(T(5), true);  // write_ts = 5
  tso.RequestRead(T(3), Ts(3), 7, r.cb());
  ASSERT_TRUE(r.denied());
  EXPECT_EQ(r.grant->reason, DenyReason::kTsoTooLate);
  EXPECT_EQ(tso.rejections(), 1u);
}

TEST(TsoTest, LateWriteRejectedByReadTimestamp) {
  TsoManager tso;
  Probe r, w;
  tso.RequestRead(T(5), Ts(5), 7, r.cb());
  tso.RequestWrite(T(3), Ts(3), 7, w.cb());
  ASSERT_TRUE(w.denied());
  EXPECT_EQ(w.grant->reason, DenyReason::kTsoTooLate);
}

TEST(TsoTest, LateWriteRejectedByWriteTimestamp) {
  TsoManager tso;
  Probe w1, w2;
  tso.RequestWrite(T(5), Ts(5), 7, w1.cb());
  tso.Finish(T(5), true);
  tso.RequestWrite(T(3), Ts(3), 7, w2.cb());
  EXPECT_TRUE(w2.denied());
}

TEST(TsoTest, AbortedWriteDoesNotAdvanceWriteTs) {
  TsoManager tso;
  Probe w1, w2;
  tso.RequestWrite(T(5), Ts(5), 7, w1.cb());
  tso.Finish(T(5), false);  // abort
  tso.RequestWrite(T(3), Ts(3), 7, w2.cb());
  EXPECT_TRUE(w2.granted());  // 3 < 5 but the write never committed
}

TEST(TsoTest, ReadWaitsForOlderPendingWrite) {
  TsoManager tso;
  Probe w, r;
  tso.RequestWrite(T(2), Ts(2), 7, w.cb());
  EXPECT_TRUE(w.granted());
  tso.RequestRead(T(4), Ts(4), 7, r.cb());
  EXPECT_TRUE(r.pending());  // must observe T2's outcome (strictness)
  tso.Finish(T(2), true);
  EXPECT_TRUE(r.granted());
}

TEST(TsoTest, ReadOlderThanPendingWriteProceeds) {
  TsoManager tso;
  Probe w, r;
  tso.RequestWrite(T(4), Ts(4), 7, w.cb());
  tso.RequestRead(T(2), Ts(2), 7, r.cb());
  // The read precedes the pending write in timestamp order: it reads the
  // committed value and does not wait.
  EXPECT_TRUE(r.granted());
}

TEST(TsoTest, WaitingReadDeniedIfCommitOvertakesIt) {
  TsoManager tso;
  Probe w1, r, w2;
  tso.RequestWrite(T(2), Ts(2), 7, w1.cb());
  tso.RequestRead(T(3), Ts(3), 7, r.cb());
  EXPECT_TRUE(r.pending());
  // A younger write gets queued too.
  tso.RequestWrite(T(5), Ts(5), 7, w2.cb());
  EXPECT_TRUE(w2.pending());
  tso.Finish(T(2), true);  // write_ts = 2 < 3: read fine
  EXPECT_TRUE(r.granted());
  EXPECT_TRUE(w2.granted());
}

TEST(TsoTest, SecondPendingWriteWaits) {
  TsoManager tso;
  Probe w1, w2;
  tso.RequestWrite(T(2), Ts(2), 7, w1.cb());
  tso.RequestWrite(T(4), Ts(4), 7, w2.cb());
  EXPECT_TRUE(w2.pending());
  tso.Finish(T(2), true);
  EXPECT_TRUE(w2.granted());
}

TEST(TsoTest, OlderWriteDeniedWhileYoungerPending) {
  TsoManager tso;
  Probe w1, w2;
  tso.RequestWrite(T(4), Ts(4), 7, w1.cb());
  tso.RequestWrite(T(2), Ts(2), 7, w2.cb());
  EXPECT_TRUE(w2.denied());  // must precede the granted prewrite
}

TEST(TsoTest, OwnPendingWriteRegrant) {
  TsoManager tso;
  Probe w1, w2;
  tso.RequestWrite(T(2), Ts(2), 7, w1.cb());
  tso.RequestWrite(T(2), Ts(2), 7, w2.cb());  // same txn rewrites
  EXPECT_TRUE(w2.granted());
}

TEST(TsoTest, FinishDropsWaitingRequestsSilently) {
  TsoManager tso;
  Probe w, r;
  tso.RequestWrite(T(2), Ts(2), 7, w.cb());
  tso.RequestRead(T(4), Ts(4), 7, r.cb());
  EXPECT_TRUE(r.pending());
  tso.Finish(T(4), false);  // the waiting reader aborts
  EXPECT_EQ(tso.num_waiting(), 0u);
  tso.Finish(T(2), true);
  EXPECT_TRUE(r.pending());  // callback never fired
}

TEST(TsoTest, NoDeadlockYoungerWaitsForOlderOnly) {
  TsoManager tso;
  // Build a chain of waits: all point from younger to older.
  Probe w2, r5, r6;
  tso.RequestWrite(T(2), Ts(2), 7, w2.cb());
  tso.RequestRead(T(5), Ts(5), 7, r5.cb());
  tso.RequestRead(T(6), Ts(6), 7, r6.cb());
  EXPECT_TRUE(r5.pending());
  EXPECT_TRUE(r6.pending());
  tso.Finish(T(2), true);
  EXPECT_TRUE(r5.granted());
  EXPECT_TRUE(r6.granted());
  EXPECT_EQ(tso.num_waiting(), 0u);
}

TEST(TsoTest, ReadsAdvanceReadTimestampMonotonically) {
  TsoManager tso;
  Probe r9, w5;
  tso.RequestRead(T(9), Ts(9), 7, r9.cb());
  // An older read does not lower read_ts.
  Probe r3;
  tso.RequestRead(T(3), Ts(3), 7, r3.cb());
  EXPECT_TRUE(r3.granted());  // reads never conflict with reads
  tso.RequestWrite(T(5), Ts(5), 7, w5.cb());
  EXPECT_TRUE(w5.denied());  // read_ts is 9
}

}  // namespace
}  // namespace rainbow
