// Tests for the offline protocol-invariant checker (verify/checker.h):
// unit tests feed hand-built traces that violate exactly one invariant
// class and assert the checker names it; end-to-end tests run whole
// sessions through the checker gate and a multi-seed protocol sweep
// under random faults.

#include <gtest/gtest.h>

#include "core/session.h"
#include "core/system.h"
#include "verify/checker.h"

namespace rainbow {
namespace {

TxnId Txn(uint64_t seq, SiteId home = 0) { return TxnId{home, seq}; }

TraceRecord Rec(TraceEventKind kind, TxnId txn, SiteId site = 0,
                ItemId item = kInvalidItem, int64_t arg = 0,
                std::string detail = "") {
  TraceRecord r;
  r.kind = kind;
  r.txn = txn;
  r.site = site;
  r.item = item;
  r.arg = arg;
  r.detail = std::move(detail);
  return r;
}

/// A checker over a plain 3-site 2PL/QC configuration (sound quorums).
HistoryChecker MakeChecker(CcKind cc = CcKind::kTwoPhaseLocking) {
  SystemConfig cfg;
  cfg.num_sites = 3;
  cfg.protocols.cc = cc;
  cfg.protocols.rcp = RcpKind::kQuorumConsensus;
  cfg.AddUniformItems(4, 0, 3);
  return HistoryChecker(cfg);
}

TraceCollector Collect(const std::vector<TraceRecord>& records) {
  TraceCollector trace;
  trace.set_detail(TraceDetail::kProtocol);
  for (const TraceRecord& r : records) trace.Emit(r);
  return trace;
}

bool HasCode(const CheckReport& report, const std::string& code) {
  for (const Violation& v : report.violations) {
    if (v.code == code) return true;
  }
  return false;
}

// --- serializability ---

TEST(VerifyTest, CleanSerializableHistoryPasses) {
  TxnId t1 = Txn(1), t2 = Txn(2);
  // t1 installs version 1 of item 0; t2 reads it afterwards: acyclic.
  auto trace = Collect({
      Rec(TraceEventKind::kWriteApplied, t1, 0, 0, 1),
      Rec(TraceEventKind::kTxnCommit, t1),
      Rec(TraceEventKind::kReadDone, t2, 0, 0, 1),
      Rec(TraceEventKind::kTxnCommit, t2),
  });
  CheckReport report = MakeChecker().Check(trace);
  EXPECT_TRUE(report.ok()) << report.Render();
  EXPECT_EQ(report.committed, 2u);
  EXPECT_EQ(report.graph_edges, 1u);  // the wr edge t1 -> t2
}

TEST(VerifyTest, PrecedenceCycleDetected) {
  TxnId t1 = Txn(1), t2 = Txn(2);
  // Classic write skew: each reads the version the other overwrites.
  // rw: t1 -> t2 (item 1), rw: t2 -> t1 (item 0) — a 2-cycle.
  auto trace = Collect({
      Rec(TraceEventKind::kReadDone, t1, 0, 0, 0),
      Rec(TraceEventKind::kWriteApplied, t1, 0, 1, 1),
      Rec(TraceEventKind::kReadDone, t2, 1, 1, 0),
      Rec(TraceEventKind::kWriteApplied, t2, 1, 0, 1),
      Rec(TraceEventKind::kTxnCommit, t1),
      Rec(TraceEventKind::kTxnCommit, t2),
  });
  CheckReport report = MakeChecker().Check(trace);
  ASSERT_TRUE(HasCode(report, "precedence-cycle")) << report.Render();
  // The message prints the offending cycle.
  for (const Violation& v : report.violations) {
    if (v.code == "precedence-cycle") {
      EXPECT_NE(v.message.find("->"), std::string::npos) << v.message;
    }
  }
}

TEST(VerifyTest, AbortedTransactionsAreExemptFromTheGraph) {
  TxnId t1 = Txn(1), t2 = Txn(2);
  // Same write skew as above, but t2 aborted: no cycle among committed.
  auto trace = Collect({
      Rec(TraceEventKind::kReadDone, t1, 0, 0, 0),
      Rec(TraceEventKind::kWriteApplied, t1, 0, 1, 1),
      Rec(TraceEventKind::kReadDone, t2, 1, 1, 0),
      Rec(TraceEventKind::kTxnCommit, t1),
      Rec(TraceEventKind::kTxnAbort, t2),
  });
  CheckReport report = MakeChecker().Check(trace);
  EXPECT_TRUE(report.ok()) << report.Render();
}

TEST(VerifyTest, ReadOfUninstalledVersionDetected) {
  TxnId t1 = Txn(1);
  auto trace = Collect({
      Rec(TraceEventKind::kReadDone, t1, 0, 0, 5),  // version 5 from nowhere
      Rec(TraceEventKind::kTxnCommit, t1),
  });
  CheckReport report = MakeChecker().Check(trace);
  EXPECT_TRUE(HasCode(report, "read-uninstalled-version")) << report.Render();
}

// Regression (rainbow_lint D1): the checker used to build its per-item
// history in an unordered_map, so with several violations the report
// order depended on hash order. Violations must come out in ItemId
// order no matter what order the trace touches the items in.
TEST(VerifyTest, ViolationOrderIsItemOrderNotInsertionOrder) {
  TxnId t1 = Txn(1);
  // Touch items 3, 1, 2 in that order, each with an uninstalled read.
  auto trace = Collect({
      Rec(TraceEventKind::kReadDone, t1, 0, 3, 9),
      Rec(TraceEventKind::kReadDone, t1, 0, 1, 9),
      Rec(TraceEventKind::kReadDone, t1, 0, 2, 9),
      Rec(TraceEventKind::kTxnCommit, t1),
  });
  CheckReport report = MakeChecker().Check(trace);
  std::vector<ItemId> flagged;
  for (const Violation& v : report.violations) {
    if (v.code == "read-uninstalled-version") flagged.push_back(v.item);
  }
  EXPECT_EQ(flagged, (std::vector<ItemId>{1, 2, 3})) << report.Render();
}

// --- atomicity ---

TEST(VerifyTest, SplitDecisionDetected) {
  TxnId t1 = Txn(1);
  auto trace = Collect({
      Rec(TraceEventKind::kDecisionApplied, t1, 0, kInvalidItem, 1),
      Rec(TraceEventKind::kDecisionApplied, t1, 1, kInvalidItem, 0),
  });
  CheckReport report = MakeChecker().Check(trace);
  EXPECT_TRUE(HasCode(report, "split-decision")) << report.Render();
}

TEST(VerifyTest, CommitWithoutFullVoteSetDetected) {
  TxnId t1 = Txn(1);
  // Prepare names a cohort of 2 but only one YES vote is on record.
  auto trace = Collect({
      Rec(TraceEventKind::kPrepare, t1, 0, kInvalidItem, 2),
      Rec(TraceEventKind::kVote, t1, 1, kInvalidItem, 1),
      Rec(TraceEventKind::kDecision, t1, 0, kInvalidItem, 1),
  });
  CheckReport report = MakeChecker().Check(trace);
  EXPECT_TRUE(HasCode(report, "commit-without-votes")) << report.Render();
}

TEST(VerifyTest, CommitDespiteNoVoteDetected) {
  TxnId t1 = Txn(1);
  auto trace = Collect({
      Rec(TraceEventKind::kPrepare, t1, 0, kInvalidItem, 2),
      Rec(TraceEventKind::kVote, t1, 1, kInvalidItem, 1),
      Rec(TraceEventKind::kVote, t1, 2, kInvalidItem, 0),  // NO vote
      Rec(TraceEventKind::kDecision, t1, 0, kInvalidItem, 1),
  });
  CheckReport report = MakeChecker().Check(trace);
  EXPECT_TRUE(HasCode(report, "commit-despite-no-vote")) << report.Render();
}

TEST(VerifyTest, CleanTwoPhaseCommitPasses) {
  TxnId t1 = Txn(1);
  auto trace = Collect({
      Rec(TraceEventKind::kPrepare, t1, 0, kInvalidItem, 2),
      Rec(TraceEventKind::kVote, t1, 1, kInvalidItem, 1),
      Rec(TraceEventKind::kVote, t1, 2, kInvalidItem, 1),
      Rec(TraceEventKind::kDecision, t1, 0, kInvalidItem, 1),
      Rec(TraceEventKind::kDecisionApplied, t1, 1, kInvalidItem, 1),
      Rec(TraceEventKind::kDecisionApplied, t1, 2, kInvalidItem, 1),
      Rec(TraceEventKind::kTxnCommit, t1),
  });
  CheckReport report = MakeChecker().Check(trace);
  EXPECT_TRUE(report.ok()) << report.Render();
}

// --- replication ---

TEST(VerifyTest, ReplicaVersionRegressionDetected) {
  TxnId t1 = Txn(1), t2 = Txn(2);
  auto trace = Collect({
      Rec(TraceEventKind::kWriteApplied, t1, 0, 0, 2),
      Rec(TraceEventKind::kWriteApplied, t2, 0, 0, 1),  // goes backwards
  });
  CheckReport report = MakeChecker().Check(trace);
  EXPECT_TRUE(HasCode(report, "replica-regression")) << report.Render();
}

TEST(VerifyTest, DivergentInstallDetected) {
  TxnId t1 = Txn(1), t2 = Txn(2);
  // Two transactions install the same (item, version) — disjoint write
  // quorums, the lost-update anomaly QC intersection rules out.
  auto trace = Collect({
      Rec(TraceEventKind::kWriteApplied, t1, 0, 0, 1),
      Rec(TraceEventKind::kWriteApplied, t2, 1, 0, 1),
  });
  CheckReport report = MakeChecker().Check(trace);
  EXPECT_TRUE(HasCode(report, "divergent-install")) << report.Render();
}

// --- 2PL lock discipline ---

TEST(VerifyTest, GrantAfterReleaseDetected) {
  TxnId t1 = Txn(1);
  auto trace = Collect({
      Rec(TraceEventKind::kCcGrant, t1, 0, 0),
      Rec(TraceEventKind::kDecisionApplied, t1, 0, kInvalidItem, 1),
      // Growing phase re-entered after the release point — 2PL broken.
      Rec(TraceEventKind::kCcGrant, t1, 0, 1),
  });
  CheckReport report = MakeChecker().Check(trace);
  EXPECT_TRUE(HasCode(report, "grant-after-release")) << report.Render();
}

TEST(VerifyTest, LockDisciplineSkippedForNonLockingEngines) {
  TxnId t1 = Txn(1);
  auto trace = Collect({
      Rec(TraceEventKind::kCcGrant, t1, 0, 0),
      Rec(TraceEventKind::kDecisionApplied, t1, 0, kInvalidItem, 1),
      Rec(TraceEventKind::kCcGrant, t1, 0, 1),
  });
  CheckReport report =
      MakeChecker(CcKind::kTimestampOrdering).Check(trace);
  EXPECT_FALSE(HasCode(report, "grant-after-release")) << report.Render();
}

TEST(VerifyTest, SurplusGrantAtNonParticipantIsExempt) {
  TxnId t1 = Txn(1);
  // The late grant happens at site 2, which never voted or applied a
  // decision for t1 — a cancelled surplus broadcast grant, not a 2PL
  // violation by the transaction.
  auto trace = Collect({
      Rec(TraceEventKind::kCcGrant, t1, 0, 0),
      Rec(TraceEventKind::kDecisionApplied, t1, 0, kInvalidItem, 1),
      Rec(TraceEventKind::kCcGrant, t1, 2, 1),
  });
  CheckReport report = MakeChecker().Check(trace);
  EXPECT_TRUE(report.ok()) << report.Render();
}

// --- static quorum configuration ---

TEST(VerifyTest, NonIntersectingQuorumsDetected) {
  SystemConfig cfg;
  cfg.num_sites = 4;
  cfg.protocols.rcp = RcpKind::kQuorumConsensus;
  ItemConfig item;
  item.name = "bad";
  item.copies = {0, 1, 2, 3};
  item.read_quorum = 1;   // R + W = 3 <= 4: reads can miss writes
  item.write_quorum = 2;  // 2W = 4 <= 4: write quorums can be disjoint
  cfg.items.push_back(item);
  HistoryChecker checker(cfg);
  CheckReport report = checker.Check(TraceCollector{});
  EXPECT_TRUE(HasCode(report, "rw-no-intersect")) << report.Render();
  EXPECT_TRUE(HasCode(report, "ww-no-intersect")) << report.Render();
  EXPECT_EQ(report.CountFor(InvariantKind::kQuorumConfig), 2u);
}

TEST(VerifyTest, MajorityQuorumsPass) {
  CheckReport report = MakeChecker().Check(TraceCollector{});
  EXPECT_TRUE(report.ok()) << report.Render();
}

// --- truncation handling ---

TEST(VerifyTest, TruncatedTraceSkipsHistoryPasses) {
  TraceCollector trace;
  trace.set_detail(TraceDetail::kProtocol);
  trace.set_capacity(4);
  TxnId t1 = Txn(1);
  for (int i = 0; i < 10; ++i) {
    trace.Emit(Rec(TraceEventKind::kCcGrant, t1, 0, 0));
  }
  ASSERT_GT(trace.dropped(), 0u);
  // Include a would-be violation: it must NOT be reported, because
  // absence-based reasoning over an evicted prefix is unsound.
  trace.Emit(Rec(TraceEventKind::kDecisionApplied, t1, 0, kInvalidItem, 1));
  trace.Emit(Rec(TraceEventKind::kDecisionApplied, t1, 1, kInvalidItem, 0));
  CheckReport report = MakeChecker().Check(trace);
  EXPECT_TRUE(report.truncated);
  EXPECT_TRUE(report.ok()) << report.Render();
  EXPECT_NE(report.Render().find("truncated"), std::string::npos);
}

// --- report rendering ---

TEST(VerifyTest, ReportRenderNamesEveryInvariant) {
  CheckReport report = MakeChecker().Check(TraceCollector{});
  std::string text = report.Render();
  EXPECT_NE(text.find("serializability"), std::string::npos);
  EXPECT_NE(text.find("atomicity"), std::string::npos);
  EXPECT_NE(text.find("replication"), std::string::npos);
  EXPECT_NE(text.find("lock-discipline"), std::string::npos);
  EXPECT_NE(text.find("quorum-config"), std::string::npos);
  EXPECT_NE(text.find("all invariants hold"), std::string::npos);
}

// --- end-to-end: the session gate ---

SystemConfig SweepSystemConfig(uint64_t seed, CcKind cc, RcpKind rcp) {
  SystemConfig cfg;
  cfg.seed = seed;
  cfg.num_sites = 4;
  cfg.protocols.cc = cc;
  cfg.protocols.rcp = rcp;
  cfg.trace_enabled = true;
  cfg.trace_detail = TraceDetail::kProtocol;
  cfg.AddUniformItems(12, 100, 3);
  return cfg;
}

TEST(VerifyTest, SessionGatePassesOnHealthyRun) {
  SystemConfig cfg = SweepSystemConfig(11, CcKind::kTwoPhaseLocking,
                                       RcpKind::kQuorumConsensus);
  WorkloadConfig wl;
  wl.seed = 12;
  wl.num_txns = 60;
  wl.mpl = 4;
  wl.max_retries = 3;
  SessionOptions opts;
  opts.verify_history = true;
  auto r = RunSession(cfg, wl, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->verify_report.find("all invariants hold"), std::string::npos)
      << r->verify_report;
}

TEST(VerifyTest, SessionGateEnablesTracingAutomatically) {
  SystemConfig cfg = SweepSystemConfig(13, CcKind::kTwoPhaseLocking,
                                       RcpKind::kRowa);
  cfg.trace_enabled = false;  // the gate must turn this on itself
  cfg.trace_detail = TraceDetail::kOff;
  WorkloadConfig wl;
  wl.seed = 14;
  wl.num_txns = 40;
  wl.mpl = 4;
  SessionOptions opts;
  opts.verify_history = true;
  auto r = RunSession(cfg, wl, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->verify_report.empty());
}

// --- end-to-end: multi-seed sweep across CC x RCP with faults ---

class VerifySweep
    : public ::testing::TestWithParam<std::tuple<CcKind, RcpKind>> {};

TEST_P(VerifySweep, InvariantsHoldAcrossSeedsUnderFaults) {
  auto [cc, rcp] = GetParam();
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    SystemConfig cfg = SweepSystemConfig(seed, cc, rcp);
    cfg.message_loss = 0.01;
    WorkloadConfig wl;
    wl.seed = seed * 7919 + 13;
    wl.num_txns = 60;
    wl.mpl = 6;
    wl.max_retries = 3;
    SessionOptions opts;
    opts.verify_history = true;
    opts.random_mttf = Millis(600);
    opts.random_mttr = Millis(150);
    opts.max_duration = Seconds(120);
    auto r = RunSession(cfg, wl, opts);
    ASSERT_TRUE(r.ok()) << "seed " << seed << ": " << r.status().ToString();
    EXPECT_TRUE(r->verify_report.find("all invariants hold") !=
                std::string::npos)
        << "seed " << seed << ":\n"
        << r->verify_report;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, VerifySweep,
    ::testing::Values(
        std::make_tuple(CcKind::kTwoPhaseLocking, RcpKind::kRowa),
        std::make_tuple(CcKind::kTwoPhaseLocking, RcpKind::kQuorumConsensus),
        std::make_tuple(CcKind::kTimestampOrdering,
                        RcpKind::kRowa),
        std::make_tuple(CcKind::kTimestampOrdering,
                        RcpKind::kQuorumConsensus)));

}  // namespace
}  // namespace rainbow
