#include <gtest/gtest.h>

#include "core/system.h"
#include "workload/workload.h"

namespace rainbow {
namespace {

std::unique_ptr<RainbowSystem> MakeSystem(int items = 100) {
  SystemConfig cfg;
  cfg.seed = 11;
  cfg.num_sites = 3;
  cfg.AddUniformItems(items, 0, 3);
  auto sys = RainbowSystem::Create(cfg);
  EXPECT_TRUE(sys.ok());
  return std::move(sys).value();
}

TEST(WorkloadTest, ProgramShapeRespectsConfig) {
  auto sys = MakeSystem();
  WorkloadConfig cfg;
  cfg.seed = 5;
  cfg.ops_min = 3;
  cfg.ops_max = 7;
  cfg.read_fraction = 1.0;  // reads only
  WorkloadGenerator wlg(sys.get(), cfg);
  for (int i = 0; i < 50; ++i) {
    TxnProgram p = wlg.GenerateProgram();
    EXPECT_GE(p.ops.size(), 3u);
    EXPECT_LE(p.ops.size(), 7u);
    for (const Op& op : p.ops) EXPECT_EQ(op.kind, OpKind::kRead);
  }
}

TEST(WorkloadTest, WriteFractionApproximatelyHolds) {
  auto sys = MakeSystem();
  WorkloadConfig cfg;
  cfg.seed = 6;
  cfg.read_fraction = 0.5;
  cfg.ops_min = cfg.ops_max = 10;
  WorkloadGenerator wlg(sys.get(), cfg);
  int reads = 0, writes = 0;
  for (int i = 0; i < 100; ++i) {
    for (const Op& op : wlg.GenerateProgram().ops) {
      (op.kind == OpKind::kRead ? reads : writes)++;
    }
  }
  double frac = static_cast<double>(reads) / (reads + writes);
  EXPECT_NEAR(frac, 0.5, 0.06);
}

TEST(WorkloadTest, HotspotSkewsAccesses) {
  auto sys = MakeSystem(100);
  WorkloadConfig cfg;
  cfg.seed = 7;
  cfg.pattern = AccessPattern::kHotspot;
  cfg.hot_fraction = 0.1;
  cfg.hot_prob = 0.9;
  cfg.ops_min = cfg.ops_max = 4;
  WorkloadGenerator wlg(sys.get(), cfg);
  int hot = 0, total = 0;
  for (int i = 0; i < 200; ++i) {
    for (const Op& op : wlg.GenerateProgram().ops) {
      ++total;
      if (op.item < 10) ++hot;
    }
  }
  EXPECT_GT(static_cast<double>(hot) / total, 0.6);
}

TEST(WorkloadTest, DistinctItemsWithinTransaction) {
  auto sys = MakeSystem(100);
  WorkloadConfig cfg;
  cfg.seed = 8;
  cfg.ops_min = cfg.ops_max = 6;
  WorkloadGenerator wlg(sys.get(), cfg);
  for (int i = 0; i < 50; ++i) {
    TxnProgram p = wlg.GenerateProgram();
    std::set<ItemId> items;
    for (const Op& op : p.ops) items.insert(op.item);
    EXPECT_GE(items.size(), p.ops.size() - 1);  // near-distinct
  }
}

TEST(WorkloadTest, ScanFractionZeroProducesNoScans) {
  auto sys = MakeSystem();
  WorkloadConfig cfg;
  cfg.seed = 21;
  cfg.scan_fraction = 0.0;
  cfg.ops_min = cfg.ops_max = 6;
  WorkloadGenerator wlg(sys.get(), cfg);
  for (int i = 0; i < 50; ++i) {
    for (const Op& op : wlg.GenerateProgram().ops) {
      EXPECT_NE(op.kind, OpKind::kScan);
    }
  }
}

TEST(WorkloadTest, ScanOpsStayInBounds) {
  auto sys = MakeSystem(/*items=*/100);
  WorkloadConfig cfg;
  cfg.seed = 22;
  cfg.scan_fraction = 1.0;  // every op becomes a scan
  cfg.scan_length = 8;
  cfg.ops_min = cfg.ops_max = 4;
  WorkloadGenerator wlg(sys.get(), cfg);
  int scans = 0;
  for (int i = 0; i < 50; ++i) {
    for (const Op& op : wlg.GenerateProgram().ops) {
      ASSERT_EQ(op.kind, OpKind::kScan);
      ++scans;
      EXPECT_GE(op.value, 1);
      EXPECT_LE(op.value, 8);
      // The whole range must fall inside the item space.
      EXPECT_LE(op.item + static_cast<ItemId>(op.value), 100u);
    }
  }
  EXPECT_GT(scans, 0);
}

TEST(WorkloadTest, ScanExpandsToRangeOfReads) {
  // A scan verb is expanded by the coordinator into per-item reads;
  // read-own-write still applies to items the txn wrote earlier.
  auto sys = MakeSystem(/*items=*/100);
  TxnProgram p;
  p.ops = {Op::Write(10, 7), Op::Write(12, 9), Op::Scan(10, 5)};
  TxnOutcome outcome;
  bool done = false;
  ASSERT_TRUE(sys->Submit(0, p, [&](const TxnOutcome& o) {
                    outcome = o;
                    done = true;
                  })
                  .ok());
  sys->RunToQuiescence(5'000'000);
  ASSERT_TRUE(done);
  ASSERT_TRUE(outcome.committed) << outcome.ToString();
  // The scan contributed one read per covered item: 10..14.
  ASSERT_EQ(outcome.reads.size(), 5u);
  EXPECT_EQ(outcome.reads[0], 7);  // own write to 10
  EXPECT_EQ(outcome.reads[1], 0);  // initial value
  EXPECT_EQ(outcome.reads[2], 9);  // own write to 12
  EXPECT_EQ(outcome.reads[3], 0);
  EXPECT_EQ(outcome.reads[4], 0);
}

TEST(WorkloadTest, ScanWorkloadRunsToCompletion) {
  auto sys = MakeSystem();
  WorkloadConfig cfg;
  cfg.seed = 23;
  cfg.num_txns = 40;
  cfg.mpl = 4;
  cfg.scan_fraction = 0.3;
  cfg.scan_length = 6;
  WorkloadGenerator wlg(sys.get(), cfg);
  bool done = false;
  wlg.Run([&] { done = true; });
  sys->RunToQuiescence(20'000'000);
  EXPECT_TRUE(done);
  EXPECT_EQ(wlg.completed(), 40u);
  EXPECT_TRUE(sys->CheckReplicaConsistency(false).ok());
}

TEST(WorkloadTest, ClosedLoopCompletesExactly) {
  auto sys = MakeSystem();
  WorkloadConfig cfg;
  cfg.seed = 9;
  cfg.num_txns = 60;
  cfg.mpl = 5;
  WorkloadGenerator wlg(sys.get(), cfg);
  bool done = false;
  wlg.Run([&] { done = true; });
  sys->RunToQuiescence(5'000'000);
  EXPECT_TRUE(done);
  EXPECT_EQ(wlg.completed(), 60u);
  EXPECT_EQ(sys->monitor().committed() + sys->monitor().aborted_total(), 60u);
}

TEST(WorkloadTest, OpenArrivalsFollowRate) {
  auto sys = MakeSystem();
  WorkloadConfig cfg;
  cfg.seed = 10;
  cfg.num_txns = 100;
  cfg.arrival = WorkloadConfig::Arrival::kOpen;
  cfg.arrival_rate_tps = 1000;  // ~100ms of arrivals
  WorkloadGenerator wlg(sys.get(), cfg);
  bool done = false;
  wlg.Run([&] { done = true; });
  sys->RunToQuiescence(5'000'000);
  EXPECT_TRUE(done);
  EXPECT_EQ(wlg.completed(), 100u);
  // All arrivals happened within a few mean interarrival times of 100ms.
  EXPECT_LT(sys->sim().Now(), Seconds(2));
}

TEST(WorkloadTest, RetriesResubmitAbortedTransactions) {
  // High contention + retries: retried transactions eventually commit.
  SystemConfig sys_cfg;
  sys_cfg.seed = 12;
  sys_cfg.num_sites = 3;
  sys_cfg.AddUniformItems(10, 0, 3);  // small database = conflicts
  auto sys = RainbowSystem::Create(sys_cfg);
  ASSERT_TRUE(sys.ok());
  WorkloadConfig cfg;
  cfg.seed = 13;
  cfg.num_txns = 30;
  cfg.mpl = 4;
  cfg.ops_min = 2;
  cfg.ops_max = 3;
  cfg.read_fraction = 0.3;
  cfg.max_retries = 10;
  WorkloadGenerator wlg(sys->get(), cfg);
  bool done = false;
  wlg.Run([&] { done = true; });
  (*sys)->RunToQuiescence(20'000'000);
  EXPECT_TRUE(done);
  EXPECT_EQ(wlg.completed(), 30u);
  EXPECT_GT(wlg.retries(), 0u);
  // With retries, most logical transactions commit in the end.
  EXPECT_GT((*sys)->monitor().committed(), 22u);
}

TEST(WorkloadTest, RetryCanInheritOriginalTimestamp) {
  auto sys = MakeSystem(10);
  TxnOutcome first;
  bool first_done = false;
  sys->Submit(0, TxnProgram{{Op::Read(0)}, ""},
              [&](const TxnOutcome& o) {
                first = o;
                first_done = true;
              })
      .ok();
  sys->RunToQuiescence(1'000'000);
  ASSERT_TRUE(first_done);
  ASSERT_NE(first.ts.site, kInvalidSite);

  // Resubmit "as a restart" with the inherited timestamp: the new
  // incarnation must run under the ORIGINAL timestamp.
  TxnOutcome second;
  bool second_done = false;
  sys->Submit(1, TxnProgram{{Op::Read(0)}, ""},
              [&](const TxnOutcome& o) {
                second = o;
                second_done = true;
              },
              first.ts)
      .ok();
  sys->RunToQuiescence(1'000'000);
  ASSERT_TRUE(second_done);
  EXPECT_EQ(second.ts, first.ts);
  EXPECT_NE(second.id, first.id);  // but it is a fresh transaction
}

TEST(WorkloadTest, TimestampInheritanceReducesRestartStarvation) {
  // Wait-die + restarts with fresh timestamps = the restarted
  // transaction is forever the youngest and keeps dying. Inheriting the
  // original timestamp lets it age and eventually win. The effect shows
  // up in the starvation TAIL — transactions that burn through the whole
  // retry budget and give up, and the worst per-transaction attempt
  // count — not in total retries (inheritance makes old transactions
  // block rather than die, which costs a few extra aborts elsewhere).
  // Aggregate over several workload seeds so a single schedule's noise
  // cannot flip the comparison.
  struct Tail {
    uint64_t gave_up = 0;
    uint64_t worst = 0;
  };
  auto run = [&](bool inherit) {
    Tail tail;
    for (uint64_t seed : {78u, 79u, 80u}) {
      SystemConfig sys_cfg;
      sys_cfg.seed = 77;
      sys_cfg.num_sites = 3;
      sys_cfg.AddUniformItems(6, 0, 3);  // very hot
      auto sys = RainbowSystem::Create(sys_cfg);
      EXPECT_TRUE(sys.ok());
      WorkloadConfig cfg;
      cfg.seed = seed;
      cfg.num_txns = 80;
      cfg.mpl = 6;
      cfg.ops_min = 2;
      cfg.ops_max = 3;
      cfg.read_fraction = 0.2;
      cfg.max_retries = 25;
      cfg.retry_inherit_timestamp = inherit;
      // Pin restart pacing to a flat, jitter-free 5ms so the two runs
      // differ only in timestamp inheritance (exponential pacing would
      // confound the comparison, and jitter draws would desynchronize
      // the generator streams between the runs).
      cfg.retry_backoff.backoff_base = Millis(5);
      cfg.retry_backoff.backoff_cap = Millis(5);
      cfg.retry_backoff.jitter = 0.0;
      WorkloadGenerator wlg(sys->get(), cfg);
      bool done = false;
      wlg.Run([&] { done = true; });
      (*sys)->RunFor(Seconds(120));
      EXPECT_TRUE(done);
      tail.gave_up += wlg.gave_up();
      tail.worst += wlg.worst_attempts();
    }
    return tail;
  };
  Tail fresh = run(false);
  Tail inherit = run(true);
  EXPECT_LT(inherit.gave_up, fresh.gave_up)
      << "inheriting timestamps should prevent retry-budget exhaustion ("
      << inherit.gave_up << " vs " << fresh.gave_up << ")";
  EXPECT_LT(inherit.worst, fresh.worst)
      << "inheriting timestamps should shrink the worst-case attempt tail ("
      << inherit.worst << " vs " << fresh.worst << ")";
}

TEST(WorkloadTest, RoundRobinHomesBalance) {
  auto sys = MakeSystem();
  WorkloadConfig cfg;
  cfg.seed = 14;
  cfg.num_txns = 90;
  cfg.mpl = 3;
  WorkloadGenerator wlg(sys.get(), cfg);
  wlg.Run();
  sys->RunToQuiescence(5'000'000);
  const auto& homed = sys->monitor().homed_per_site();
  ASSERT_EQ(homed.size(), 3u);
  for (const auto& [site, count] : homed) {
    EXPECT_NEAR(static_cast<double>(count), 30.0, 12.0);
  }
  EXPECT_LT(sys->monitor().home_load_cv(), 0.3);
}

}  // namespace
}  // namespace rainbow
