#include "lint_core.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <unordered_set>

namespace rainbow::lint {
namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class TokKind { kIdent, kNumber, kPunct, kString };

struct Token {
  TokKind kind;
  std::string text;
  int line;
};

struct Suppression {
  std::string rule;
  std::string reason;
  int line;
  mutable bool used = false;
};

struct Lexed {
  std::vector<Token> toks;
  std::vector<Suppression> suppressions;
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parses "RAINBOW_LINT(allow:D1 reason=...)" annotations out of a
/// comment's text. Multiple rules may be comma-separated after
/// "allow:". A malformed annotation (no reason) is still recorded —
/// with an empty reason — so the rule pass can flag it.
void ParseSuppressions(const std::string& comment, int line,
                       std::vector<Suppression>* out) {
  size_t pos = 0;
  while ((pos = comment.find("RAINBOW_LINT(", pos)) != std::string::npos) {
    size_t open = pos + std::strlen("RAINBOW_LINT(");
    size_t close = comment.find(')', open);
    if (close == std::string::npos) break;
    std::string body = comment.substr(open, close - open);
    pos = close;

    std::string rules_part;
    std::string reason;
    size_t allow = body.find("allow:");
    if (allow != std::string::npos) {
      size_t start = allow + 6;
      size_t end = body.find_first_of(" \t", start);
      rules_part = body.substr(start, end == std::string::npos
                                          ? std::string::npos
                                          : end - start);
    }
    size_t rpos = body.find("reason=");
    if (rpos != std::string::npos) {
      reason = body.substr(rpos + 7);
      while (!reason.empty() && std::isspace(static_cast<unsigned char>(
                                    reason.back()))) {
        reason.pop_back();
      }
    }
    std::stringstream rules(rules_part);
    std::string rule;
    while (std::getline(rules, rule, ',')) {
      if (!rule.empty()) out->push_back(Suppression{rule, reason, line});
    }
    if (rules_part.empty()) {
      out->push_back(Suppression{"", reason, line});  // malformed
    }
  }
}

/// C++-enough lexer: skips comments (capturing RAINBOW_LINT
/// annotations), string/char literals (emitted as opaque kString
/// tokens), raw strings, and whole preprocessor lines (so `#include
/// <unordered_map>` never looks like a declaration).
Lexed Lex(const std::string& src) {
  Lexed out;
  int line = 1;
  size_t i = 0;
  const size_t n = src.size();
  bool at_line_start = true;

  auto newline = [&] {
    ++line;
    at_line_start = true;
  };

  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      newline();
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (at_line_start && c == '#') {
      // Preprocessor directive: skip to end of line, honoring \-splices.
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          newline();
          i += 2;
        } else if (src[i] == '\n') {
          break;
        } else {
          ++i;
        }
      }
      continue;
    }
    at_line_start = false;
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      size_t end = src.find('\n', i);
      if (end == std::string::npos) end = n;
      ParseSuppressions(src.substr(i, end - i), line, &out.suppressions);
      i = end;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      size_t end = src.find("*/", i + 2);
      if (end == std::string::npos) end = n;
      std::string body = src.substr(i, std::min(end + 2, n) - i);
      ParseSuppressions(body, line, &out.suppressions);
      line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
      i = std::min(end + 2, n);
      continue;
    }
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      // Raw string: R"delim( ... )delim"
      size_t dstart = i + 2;
      size_t popen = src.find('(', dstart);
      if (popen != std::string::npos) {
        std::string delim = src.substr(dstart, popen - dstart);
        std::string closer = ")" + delim + "\"";
        size_t end = src.find(closer, popen + 1);
        if (end == std::string::npos) end = n;
        std::string body = src.substr(i, std::min(end + closer.size(), n) - i);
        line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
        out.toks.push_back(Token{TokKind::kString, "<raw>", line});
        i = std::min(end + closer.size(), n);
        continue;
      }
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        if (src[j] == '\n') ++line;  // unterminated; stay robust
        ++j;
      }
      out.toks.push_back(Token{TokKind::kString, "<str>", line});
      i = j + 1;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(src[j])) ++j;
      out.toks.push_back(Token{TokKind::kIdent, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i + 1;
      while (j < n && (IsIdentChar(src[j]) || src[j] == '.' ||
                       ((src[j] == '+' || src[j] == '-') &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E')))) {
        ++j;
      }
      out.toks.push_back(Token{TokKind::kNumber, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Multi-char punctuation we care about; everything else single-char.
    static const char* kTwoChar[] = {"::", "->", "<<", ">>", "+=", "-=",
                                     "==", "!=", "<=", ">=", "&&", "||"};
    std::string p(1, c);
    if (i + 1 < n) {
      std::string two = src.substr(i, 2);
      for (const char* t : kTwoChar) {
        if (two == t) {
          p = two;
          break;
        }
      }
    }
    out.toks.push_back(Token{TokKind::kPunct, p, line});
    i += p.size();
  }
  return out;
}

// ---------------------------------------------------------------------------
// Token-stream helpers
// ---------------------------------------------------------------------------

bool Is(const std::vector<Token>& t, size_t i, const char* text) {
  return i < t.size() && t[i].text == text;
}
bool IsIdent(const std::vector<Token>& t, size_t i) {
  return i < t.size() && t[i].kind == TokKind::kIdent;
}

/// Skips a balanced <...> starting at the '<' at index `i`; returns the
/// index just past the matching '>'. `>>` closes two levels. Returns
/// `i` unchanged if `i` is not '<' or the close is never found.
size_t SkipAngles(const std::vector<Token>& t, size_t i) {
  if (!Is(t, i, "<")) return i;
  int depth = 0;
  for (size_t j = i; j < t.size(); ++j) {
    const std::string& s = t[j].text;
    if (s == "<") ++depth;
    if (s == "<<") depth += 2;  // unlikely in a type, but stay balanced
    if (s == ">") --depth;
    if (s == ">>") depth -= 2;
    if (s == ";" || s == "{") return i;  // not a template-arg list
    if (depth <= 0) return j + 1;
  }
  return i;
}

/// Skips a balanced (...) starting at the '(' at index `i`; returns the
/// index just past the matching ')'.
size_t SkipParens(const std::vector<Token>& t, size_t i) {
  if (!Is(t, i, "(")) return i;
  int depth = 0;
  for (size_t j = i; j < t.size(); ++j) {
    if (t[j].text == "(") ++depth;
    if (t[j].text == ")") --depth;
    if (depth == 0) return j + 1;
  }
  return t.size();
}

size_t SkipBraces(const std::vector<Token>& t, size_t i) {
  if (!Is(t, i, "{")) return i;
  int depth = 0;
  for (size_t j = i; j < t.size(); ++j) {
    if (t[j].text == "{") ++depth;
    if (t[j].text == "}") --depth;
    if (depth == 0) return j + 1;
  }
  return t.size();
}

// ---------------------------------------------------------------------------
// Declaration pass
// ---------------------------------------------------------------------------

struct Decls {
  /// Variable / member names declared with an unordered container type.
  std::unordered_set<std::string> unordered_vars;
  /// Function names declared (in this file) to return an unordered
  /// container — `for (x : Scan())` is as hash-ordered as the map.
  std::unordered_set<std::string> unordered_fns;
  /// Type aliases (`using Foo = std::unordered_map<...>`).
  std::unordered_set<std::string> unordered_aliases;
  /// Token-index spans [first, last) inside `struct std::hash<T>`
  /// specializations — D4-exempt.
  std::vector<std::pair<size_t, size_t>> hash_specializations;
};

bool IsUnorderedTypeName(const Decls& d, const std::string& s) {
  return s == "unordered_map" || s == "unordered_set" ||
         s == "unordered_multimap" || s == "unordered_multiset" ||
         d.unordered_aliases.count(s) > 0;
}

Decls ScanDecls(const std::vector<Token>& t) {
  Decls d;
  for (size_t i = 0; i < t.size(); ++i) {
    // using Alias = ... unordered_map ... ;
    if (Is(t, i, "using") && IsIdent(t, i + 1) && Is(t, i + 2, "=")) {
      std::string alias = t[i + 1].text;
      for (size_t j = i + 3; j < t.size() && !Is(t, j, ";"); ++j) {
        if (t[j].kind == TokKind::kIdent &&
            IsUnorderedTypeName(d, t[j].text)) {
          d.unordered_aliases.insert(alias);
          break;
        }
      }
      continue;
    }
    // struct/class std::hash<T> { ... }  (specialization — D4-exempt)
    if ((Is(t, i, "struct") || Is(t, i, "class"))) {
      size_t j = i + 1;
      if (Is(t, j, "std") && Is(t, j + 1, "::")) j += 2;
      if (Is(t, j, "hash") && Is(t, j + 1, "<")) {
        size_t after = SkipAngles(t, j + 1);
        if (after != j + 1 && Is(t, after, "{")) {
          d.hash_specializations.emplace_back(after, SkipBraces(t, after));
        }
      }
    }
    // [std ::] unordered_xxx < ... >  [&*const]*  name | Qual::Fn(
    if (t[i].kind != TokKind::kIdent || !IsUnorderedTypeName(d, t[i].text)) {
      continue;
    }
    // Exclude member access (`x.unordered_map` can't happen, but be safe).
    if (i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->")) continue;
    size_t j = i + 1;
    if (Is(t, j, "<")) {
      size_t after = SkipAngles(t, j);
      if (after == j) continue;  // comparison, not a template-arg list
      j = after;
    } else if (!d.unordered_aliases.count(t[i].text)) {
      continue;  // bare `unordered_map` without args: not a declaration
    }
    while (Is(t, j, "&") || Is(t, j, "*") || Is(t, j, "const")) ++j;
    if (!IsIdent(t, j)) continue;
    // Collect a possibly qualified name (Wal::Scan).
    size_t k = j;
    std::string last = t[k].text;
    ++k;
    while (Is(t, k, "::") && IsIdent(t, k + 1)) {
      last = t[k + 1].text;
      k += 2;
    }
    if (Is(t, k, "(")) {
      // Function declaration/definition returning an unordered container
      // (a variable with ctor parens would be `name(args)` too, but the
      // codebase brace-initializes; treat parens as a function).
      d.unordered_fns.insert(last);
    } else if (Is(t, k, ";") || Is(t, k, "=") || Is(t, k, "{") ||
               Is(t, k, ",") || Is(t, k, ")")) {
      // ')' admits function parameters (`const unordered_set<T>& s)`).
      d.unordered_vars.insert(last);
    }
  }
  return d;
}

// ---------------------------------------------------------------------------
// Rule pass
// ---------------------------------------------------------------------------

/// Identifiers in a loop body that mean "this loop emits something
/// order-sensitive": appends to a sequence, serializes, renders,
/// prints, or logs.
bool IsEmitMarker(const Token& tok) {
  if (tok.kind == TokKind::kPunct) return tok.text == "<<";
  if (tok.kind != TokKind::kIdent) return false;
  static const std::unordered_set<std::string> kMarkers = {
      "push_back", "emplace_back", "Append",       "append",
      "Emit",      "emit",         "Render",       "Serialize",
      "serialize", "Write",        "write",        "Print",
      "print",     "printf",       "fprintf",      "sprintf",
      "snprintf",  "StringPrintf", "AppendFormat", "Log",
  };
  if (kMarkers.count(tok.text)) return true;
  // Encoder-style Put* (PutU32, PutBytes, ...).
  return tok.text.size() > 3 && tok.text.compare(0, 3, "Put") == 0 &&
         std::isupper(static_cast<unsigned char>(tok.text[3]));
}

struct RuleCtx {
  const std::string* filename;
  const std::vector<Token>* toks;
  const Decls* decls;
  Report* report;
  bool d2_exempt;
};

void AddFinding(RuleCtx& ctx, int line, const char* rule, std::string message,
                std::string hint) {
  Finding f;
  f.file = *ctx.filename;
  f.line = line;
  f.rule = rule;
  f.message = std::move(message);
  f.hint = std::move(hint);
  ctx.report->findings.push_back(std::move(f));
}

bool RangeIsUnordered(const RuleCtx& ctx, size_t begin, size_t end) {
  const std::vector<Token>& t = *ctx.toks;
  for (size_t i = begin; i < end; ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    if (ctx.decls->unordered_vars.count(t[i].text)) return true;
    if (ctx.decls->unordered_fns.count(t[i].text) && Is(t, i + 1, "(")) {
      return true;
    }
  }
  return false;
}

/// D1: hash-ordered iteration whose body emits.
void CheckD1AtFor(RuleCtx& ctx, size_t for_idx) {
  const std::vector<Token>& t = *ctx.toks;
  size_t open = for_idx + 1;
  if (!Is(t, open, "(")) return;
  size_t close = SkipParens(t, open) - 1;  // index of ')'
  if (close <= open) return;

  bool unordered = false;
  // Range-for: a top-level ':' inside the header.
  size_t colon = 0;
  int depth = 0;
  for (size_t i = open; i < close; ++i) {
    if (t[i].text == "(" || t[i].text == "[" || t[i].text == "{") ++depth;
    if (t[i].text == ")" || t[i].text == "]" || t[i].text == "}") --depth;
    if (depth == 1 && t[i].kind == TokKind::kPunct && t[i].text == ":") {
      colon = i;
      break;
    }
  }
  if (colon != 0) {
    unordered = RangeIsUnordered(ctx, colon + 1, close);
  } else {
    // Classic iterator loop: `for (auto it = m.begin(); ...)`.
    size_t first_semi = close;
    for (size_t i = open; i < close; ++i) {
      if (t[i].text == ";") {
        first_semi = i;
        break;
      }
    }
    bool has_begin = false;
    for (size_t i = open; i < first_semi; ++i) {
      if (t[i].kind == TokKind::kIdent &&
          (t[i].text == "begin" || t[i].text == "cbegin")) {
        has_begin = true;
      }
    }
    if (has_begin) unordered = RangeIsUnordered(ctx, open, first_semi);
  }
  if (!unordered) return;

  // Loop body: a braced block or a single statement.
  size_t body_begin = close + 1;
  size_t body_end;
  if (Is(t, body_begin, "{")) {
    body_end = SkipBraces(t, body_begin);
  } else {
    body_end = body_begin;
    int d = 0;
    while (body_end < t.size()) {
      const std::string& s = t[body_end].text;
      if (s == "(" || s == "{") ++d;
      if (s == ")" || s == "}") --d;
      if (d == 0 && s == ";") break;
      ++body_end;
    }
  }
  for (size_t i = body_begin; i < body_end; ++i) {
    if (IsEmitMarker(t[i])) {
      AddFinding(
          ctx, t[for_idx].line, "D1",
          "iteration over an unordered container emits output in hash "
          "order ('" + t[i].text + "' in the loop body)",
          "range-construct a vector of the entries and sort it (or switch "
          "the container to std::map / a dense slot table); if the result "
          "is re-sorted before it becomes visible, suppress with "
          "// RAINBOW_LINT(allow:D1 reason=...)");
      return;
    }
  }
}

/// D2: wall-clock / entropy sources.
void CheckD2AtIdent(RuleCtx& ctx, size_t i) {
  const std::vector<Token>& t = *ctx.toks;
  const std::string& s = t[i].text;
  static const std::unordered_set<std::string> kAlwaysBad = {
      "system_clock",  "steady_clock", "high_resolution_clock",
      "random_device", "gettimeofday", "clock_gettime",
      "localtime",     "gmtime",       "mktime",
      "getrandom",
  };
  static const std::unordered_set<std::string> kBadCalls = {
      "time", "clock", "rand", "srand", "rand_r", "drand48",
  };
  bool bad = kAlwaysBad.count(s) > 0;
  if (!bad && kBadCalls.count(s) > 0 && Is(t, i + 1, "(")) {
    // Member calls (`sim.time()`) are fine; `std::rand(` / `::rand(` /
    // bare `rand(` are not.
    if (i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->")) return;
    if (i > 0 && t[i - 1].text == "::" && !(i > 1 && t[i - 2].text == "std")) {
      return;
    }
    // A preceding identifier means this is a declaration
    // (`long time() const`), not a call — except expression-introducing
    // keywords (`return time(0)`).
    static const std::unordered_set<std::string> kExprKeywords = {
        "return", "co_return", "co_yield", "co_await", "throw",
        "case",   "else",      "do",
    };
    if (i > 0 && t[i - 1].kind == TokKind::kIdent &&
        kExprKeywords.count(t[i - 1].text) == 0) {
      return;
    }
    bad = true;
  }
  if (!bad) return;
  AddFinding(ctx, t[i].line, "D2",
             "wall-clock/entropy source '" + s +
                 "' in deterministic code — same seed must mean the same "
                 "execution",
             "use the simulator's virtual clock (Simulator::Now) or a "
             "seeded common/rng.h stream; bench/ and tools/ are exempt "
             "from D2");
}

/// D3: pointer-keyed associative containers and pointer→integer casts.
void CheckD3(RuleCtx& ctx) {
  const std::vector<Token>& t = *ctx.toks;
  static const std::unordered_set<std::string> kAssoc = {
      "map",           "set",           "multimap",     "multiset",
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  for (size_t i = 0; i < t.size(); ++i) {
    // reinterpret_cast<uintptr_t>(...) — pointer value becoming a number.
    if (Is(t, i, "reinterpret_cast") && Is(t, i + 1, "<")) {
      for (size_t j = i + 2; j < std::min(t.size(), i + 6); ++j) {
        if (t[j].text == ">") break;
        if (t[j].text == "uintptr_t" || t[j].text == "intptr_t") {
          AddFinding(ctx, t[i].line, "D3",
                     "pointer value cast to an integer — allocator "
                     "addresses differ run to run",
                     "key on a stable id (SiteId/TxnId/slot index) instead "
                     "of an address");
          break;
        }
      }
      continue;
    }
    // std::map<T*, ...> / std::set<const T*> / unordered variants.
    if (t[i].kind != TokKind::kIdent || kAssoc.count(t[i].text) == 0)
      continue;
    if (!(i >= 2 && t[i - 1].text == "::" && t[i - 2].text == "std"))
      continue;
    if (!Is(t, i + 1, "<")) continue;
    size_t end = SkipAngles(t, i + 1);
    if (end == i + 1) continue;
    // First template argument: up to a top-level ',' or the final '>'.
    int depth = 0;
    size_t last_tok = 0;
    bool found = false;
    for (size_t j = i + 1; j < end; ++j) {
      const std::string& s = t[j].text;
      if (s == "<") ++depth;
      if (s == ">" || s == ">>") --depth;
      if (depth == 1 && s == ",") {
        found = true;
        break;
      }
      if (j > i + 1 && depth >= 1) last_tok = j;
    }
    if (!found) {
      // set<T*>: first arg runs to the closing '>'; last_tok already
      // points at the final token of the argument.
    }
    if (last_tok != 0 && t[last_tok].text == "*") {
      AddFinding(ctx, t[i].line, "D3",
                 "associative container keyed by a pointer — iteration "
                 "and ordering leak allocator addresses",
                 "key on a stable id (SiteId/TxnId/slot index), or carry "
                 "an explicit ordering field");
    }
  }
}

/// D4: std::hash used outside a std::hash specialization.
void CheckD4(RuleCtx& ctx) {
  const std::vector<Token>& t = *ctx.toks;
  for (size_t i = 0; i + 3 < t.size(); ++i) {
    if (!(Is(t, i, "std") && Is(t, i + 1, "::") && Is(t, i + 2, "hash") &&
          Is(t, i + 3, "<"))) {
      continue;
    }
    bool exempt = false;
    for (const auto& [b, e] : ctx.decls->hash_specializations) {
      if (i >= b && i < e) {
        exempt = true;
        break;
      }
    }
    // The `struct std::hash<T>` introducer itself is also exempt.
    if (i >= 1 && (t[i - 1].text == "struct" || t[i - 1].text == "class")) {
      exempt = true;
    }
    if (exempt) continue;
    AddFinding(ctx, t[i].line, "D4",
               "std::hash value used outside a hash specialization — "
               "hash values are implementation-defined and must not "
               "feed ordering, traces, or recovery-visible output",
               "order by the key itself (TxnId/ItemId comparators), not "
               "its hash; hashes may only seed common/rng.h streams via "
               "checked-in constants");
  }
}

// ---------------------------------------------------------------------------
// Suppression matching
// ---------------------------------------------------------------------------

void ApplySuppressions(Report* report, std::vector<Suppression>& sups,
                       const std::string& filename) {
  for (Finding& f : report->findings) {
    for (const Suppression& s : sups) {
      if (s.rule != f.rule && s.rule != "ALL") continue;
      if (s.line != f.line && s.line != f.line - 1) continue;
      if (s.reason.empty()) continue;  // reasonless: never suppresses
      f.suppressed = true;
      f.suppress_reason = s.reason;
      s.used = true;
      break;
    }
  }
  for (const Suppression& s : sups) {
    if (s.reason.empty()) {
      Finding f;
      f.file = filename;
      f.line = s.line;
      f.rule = "LINT";
      f.message = "RAINBOW_LINT suppression without a reason";
      f.hint = "write // RAINBOW_LINT(allow:" +
               (s.rule.empty() ? std::string("<rule>") : s.rule) +
               " reason=<why this is safe>)";
      report->findings.push_back(std::move(f));
    } else if (!s.used) {
      Finding f;
      f.file = filename;
      f.line = s.line;
      f.rule = "LINT";
      f.message = "unused RAINBOW_LINT(allow:" + s.rule +
                  ") suppression — the finding it silenced is gone";
      f.hint = "delete the stale suppression (and lower the budget in "
               "tools/lint/suppressions.budget)";
      report->findings.push_back(std::move(f));
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

int Report::Unsuppressed() const {
  int n = 0;
  for (const Finding& f : findings) {
    if (!f.suppressed) ++n;
  }
  return n;
}

std::map<std::string, int> Report::SuppressionsByRule() const {
  std::map<std::string, int> out;
  for (const Finding& f : findings) {
    if (f.suppressed) ++out[f.rule];
  }
  return out;
}

void Report::MergeFrom(const Report& other) {
  findings.insert(findings.end(), other.findings.begin(),
                  other.findings.end());
  io_errors.insert(io_errors.end(), other.io_errors.begin(),
                   other.io_errors.end());
}

Report LintSource(const std::string& filename, const std::string& content) {
  Report report;
  Lexed lexed = Lex(content);
  Decls decls = ScanDecls(lexed.toks);

  bool d2_exempt = filename.find("/bench/") != std::string::npos ||
                   filename.find("/tools/") != std::string::npos ||
                   filename.rfind("bench/", 0) == 0 ||
                   filename.rfind("tools/", 0) == 0;

  RuleCtx ctx{&filename, &lexed.toks, &decls, &report, d2_exempt};
  const std::vector<Token>& t = lexed.toks;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    if (t[i].text == "for") CheckD1AtFor(ctx, i);
    if (!d2_exempt) CheckD2AtIdent(ctx, i);
  }
  CheckD3(ctx);
  CheckD4(ctx);

  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
            });
  ApplySuppressions(&report, lexed.suppressions, filename);
  return report;
}

Report LintFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    Report r;
    r.io_errors.push_back(path);
    return r;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return LintSource(path, ss.str());
}

std::vector<std::string> CollectSources(const std::string& path) {
  namespace fs = std::filesystem;
  std::vector<std::string> out;
  std::error_code ec;
  if (fs::is_regular_file(path, ec)) {
    out.push_back(path);
    return out;
  }
  for (fs::recursive_directory_iterator it(path, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file()) continue;
    std::string p = it->path().string();
    if (p.size() > 3 && p.compare(p.size() - 3, 3, ".cc") == 0) {
      out.push_back(p);
    } else if (p.size() > 2 && p.compare(p.size() - 2, 2, ".h") == 0) {
      out.push_back(p);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::map<std::string, int> ParseBudget(const std::string& content) {
  std::map<std::string, int> out;
  std::stringstream ss(content);
  std::string line;
  while (std::getline(ss, line)) {
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::stringstream ls(line);
    std::string rule;
    int count;
    if (ls >> rule >> count) out[rule] = count;
  }
  return out;
}

std::vector<std::string> CheckBudget(
    const Report& report, const std::map<std::string, int>& budget) {
  std::vector<std::string> violations;
  for (const auto& [rule, used] : report.SuppressionsByRule()) {
    auto it = budget.find(rule);
    int allowed = it == budget.end() ? 0 : it->second;
    if (used > allowed) {
      violations.push_back(rule + ": " + std::to_string(used) +
                           " suppression(s) used > budget " +
                           std::to_string(allowed));
    }
  }
  return violations;
}

}  // namespace rainbow::lint
