#ifndef RAINBOW_TOOLS_LINT_LINT_CORE_H_
#define RAINBOW_TOOLS_LINT_LINT_CORE_H_

#include <map>
#include <string>
#include <vector>

/// rainbow_lint — determinism-contract static analysis over the
/// Rainbow sources. No LLVM dependency: a C++ tokenizer plus
/// lightweight file-local declaration tracking, which is enough for
/// the rule families below because they target *shapes* the codebase
/// bans outright rather than deep dataflow:
///
///   D1  range-for / iterator loop over a std::unordered_map or
///       std::unordered_set whose body emits (push_back/Append/
///       Serialize/Render/printf/`<<`/...). Hash-order iteration
///       leaking into recovery- or trace-visible output is exactly the
///       Wal::InDoubt bug class PR 7 fixed twice.
///   D2  wall-clock / entropy calls (steady_clock, system_clock,
///       time(), rand(), random_device, ...). Virtual time and seeded
///       Rng streams are the only time/randomness sources allowed in
///       src/; bench/ and tools/ are exempt.
///   D3  ordering or container keys derived from pointer values
///       (map/set keyed by T*, reinterpret_cast<uintptr_t> feeding a
///       key). Allocator addresses differ run to run.
///   D4  std::hash values used outside a std::hash specialization
///       body. Hash values are implementation-defined; deriving
///       ordering or output from them breaks the same-seed
///       byte-identical-trace guarantee across standard libraries.
///
/// Suppressions are explicit comments on the finding line or the line
/// above:
///
///   // RAINBOW_LINT(allow:D1 reason=result is sorted below)
///
/// A suppression with an empty reason, or one that no longer matches a
/// finding, is itself reported (rule LINT) — suppressions cannot rot.
/// The CLI additionally enforces a checked-in per-rule budget
/// (tools/lint/suppressions.budget) so the total cannot silently grow.
namespace rainbow::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;     ///< "D1".."D4", or "LINT" for meta findings
  std::string message;  ///< one-line statement of the defect
  std::string hint;     ///< fix-it hint
  bool suppressed = false;
  std::string suppress_reason;
};

struct Report {
  std::vector<Finding> findings;  ///< includes suppressed findings
  /// Files that could not be read (CLI surfaces these as errors).
  std::vector<std::string> io_errors;

  int Unsuppressed() const;
  /// Count of *used* suppressions per rule (what the budget bounds).
  std::map<std::string, int> SuppressionsByRule() const;
  void MergeFrom(const Report& other);
};

/// Lints `content` as if read from `filename` (the name drives the D2
/// bench//tools/ exemption and appears in findings).
Report LintSource(const std::string& filename, const std::string& content);

/// Reads and lints one file.
Report LintFile(const std::string& path);

/// Recursively collects .h/.cc files under `path` (or `path` itself if
/// it is a file), sorted for deterministic output.
std::vector<std::string> CollectSources(const std::string& path);

/// Parses a suppression-budget file: `<rule> <count>` per line, `#`
/// comments. Unknown rules are allowed (budget 0 applies otherwise).
std::map<std::string, int> ParseBudget(const std::string& content);

/// Returns human-readable violations ("D1: 3 suppressions > budget 2")
/// for every rule whose used-suppression count exceeds the budget;
/// empty means within budget.
std::vector<std::string> CheckBudget(const Report& report,
                                     const std::map<std::string, int>& budget);

}  // namespace rainbow::lint

#endif  // RAINBOW_TOOLS_LINT_LINT_CORE_H_
