// rainbow_lint CLI — determinism-contract lint over the Rainbow
// sources. See lint_core.h for the rule families (D1..D4) and the
// suppression syntax.
//
// Usage:
//   rainbow_lint [--budget FILE] [--list-suppressions] PATH...
//
// PATH arguments are files or directories (directories are walked
// recursively for .h/.cc). Exit codes:
//   0  clean (no unsuppressed findings, suppressions within budget)
//   1  findings or budget violations
//   2  usage / I-O error

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint_core.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: rainbow_lint [--budget FILE] [--list-suppressions] "
               "PATH...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string budget_path;
  bool list_suppressions = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--budget") {
      if (++i >= argc) return Usage();
      budget_path = argv[i];
    } else if (arg == "--list-suppressions") {
      list_suppressions = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return Usage();

  rainbow::lint::Report report;
  size_t files = 0;
  for (const std::string& path : paths) {
    for (const std::string& file : rainbow::lint::CollectSources(path)) {
      report.MergeFrom(rainbow::lint::LintFile(file));
      ++files;
    }
  }
  for (const std::string& e : report.io_errors) {
    std::fprintf(stderr, "rainbow_lint: cannot read %s\n", e.c_str());
  }
  if (files == 0 || !report.io_errors.empty()) return 2;

  int shown = 0;
  for (const auto& f : report.findings) {
    if (f.suppressed) {
      if (list_suppressions) {
        std::printf("%s:%d: [%s] suppressed (%s)\n", f.file.c_str(), f.line,
                    f.rule.c_str(), f.suppress_reason.c_str());
      }
      continue;
    }
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
    std::printf("    hint: %s\n", f.hint.c_str());
    ++shown;
  }

  bool budget_ok = true;
  if (!budget_path.empty()) {
    std::ifstream in(budget_path);
    if (!in) {
      std::fprintf(stderr, "rainbow_lint: cannot read budget file %s\n",
                   budget_path.c_str());
      return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    auto budget = rainbow::lint::ParseBudget(ss.str());
    for (const std::string& v :
         rainbow::lint::CheckBudget(report, budget)) {
      std::printf("suppression budget exceeded: %s (%s)\n", v.c_str(),
                  budget_path.c_str());
      budget_ok = false;
    }
  }

  int suppressed =
      static_cast<int>(report.findings.size()) - report.Unsuppressed();
  std::printf("rainbow_lint: %zu file(s), %d finding(s), %d suppressed%s\n",
              files, shown, suppressed,
              budget_ok ? "" : ", BUDGET EXCEEDED");
  return (shown == 0 && budget_ok) ? 0 : 1;
}
